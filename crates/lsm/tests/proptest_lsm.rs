//! Property-based tests: the LSM-tree must behave exactly like a `BTreeMap`
//! model under arbitrary operation sequences, for both point lookups and
//! range scans, across flushes and compactions.

use adcache_lsm::{DirectProvider, LsmTree, MemStorage, Options};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u8),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 512, v)),
        1 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
        2 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        2 => (any::<u16>(), 1u8..32).prop_map(|(k, n)| Op::Scan(k % 512, n)),
        1 => Just(Op::Flush),
    ]
}

fn key(k: u16) -> Bytes {
    Bytes::from(format!("key{k:05}"))
}

fn value(k: u16, v: u8) -> Bytes {
    Bytes::from(format!("value-{k}-{v}"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn lsm_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut tiny = Options::small();
        // Keep structures tiny so flush/compaction paths are exercised often.
        tiny.memtable_size = 2048;
        tiny.sstable_size = 2048;
        let db = LsmTree::new(tiny, Arc::new(MemStorage::new())).unwrap();
        let provider = DirectProvider;
        let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    db.put(key(k), value(k, v)).unwrap();
                    model.insert(key(k), value(k, v));
                }
                Op::Delete(k) => {
                    db.delete(key(k)).unwrap();
                    model.remove(&key(k));
                }
                Op::Get(k) => {
                    let got = db.get(&key(k), &provider).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&key(k)), "get {}", k);
                }
                Op::Scan(k, n) => {
                    let got = db.scan(&key(k), n as usize, &provider).unwrap();
                    let want: Vec<(Bytes, Bytes)> = model
                        .range(key(k)..)
                        .take(n as usize)
                        .map(|(a, b)| (a.clone(), b.clone()))
                        .collect();
                    prop_assert_eq!(got, want, "scan {} {}", k, n);
                }
                Op::Flush => db.flush().unwrap(),
            }
        }

        // Final full verification.
        for k in 0..512u16 {
            let got = db.get(&key(k), &provider).unwrap();
            prop_assert_eq!(got.as_ref(), model.get(&key(k)));
        }
        let got = db.scan(b"", 1024, &provider).unwrap();
        let want: Vec<(Bytes, Bytes)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn block_roundtrip(entries in proptest::collection::btree_map(
        proptest::collection::vec(any::<u8>(), 1..40),
        proptest::collection::vec(any::<u8>(), 0..100),
        1..100,
    ), interval in 1usize..20) {
        use adcache_lsm::{Block, BlockBuilder, Entry};
        let mut b = BlockBuilder::new(interval);
        for (k, v) in &entries {
            b.add(k, &Entry::Put(Bytes::copy_from_slice(v))).unwrap();
        }
        let block = Block::decode(b.finish()).unwrap();
        let decoded: Vec<_> = block.iter().map(|r| r.unwrap()).collect();
        prop_assert_eq!(decoded.len(), entries.len());
        for (ke, (k, v)) in decoded.iter().zip(entries.iter()) {
            prop_assert_eq!(ke.key.as_ref(), &k[..]);
            prop_assert_eq!(ke.entry.value().unwrap().as_ref(), &v[..]);
        }
        // Point lookups agree.
        for (k, v) in &entries {
            let got = block.get(k).unwrap().unwrap();
            prop_assert_eq!(got.value().unwrap().as_ref(), &v[..]);
        }
        // Seeks agree with the sorted model.
        if let Some((first, _)) = entries.iter().next() {
            let mut probe = first.clone();
            probe.push(0);
            let got: Vec<_> = block.iter_from(&probe).unwrap().map(|r| r.unwrap().key).collect();
            let want: Vec<_> = entries.range(probe.clone()..).map(|(k, _)| Bytes::copy_from_slice(k)).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn skiplist_matches_btreemap(ops in proptest::collection::vec(
        (any::<u16>(), any::<u8>(), 0u8..3), 1..500,
    )) {
        use adcache_lsm::SkipList;
        let mut list: SkipList<u8> = SkipList::new();
        let mut model: BTreeMap<Bytes, u8> = BTreeMap::new();
        for (k, v, action) in ops {
            let kb = Bytes::from(format!("{:05}", k % 256));
            match action {
                0 => {
                    prop_assert_eq!(list.insert(kb.clone(), v), model.insert(kb, v));
                }
                1 => {
                    prop_assert_eq!(list.remove(&kb), model.remove(&kb));
                }
                _ => {
                    prop_assert_eq!(list.get(&kb), model.get(&kb));
                }
            }
        }
        let got: Vec<_> = list.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bloom_never_false_negative(keys in proptest::collection::hash_set(
        proptest::collection::vec(any::<u8>(), 1..32), 1..300,
    ), bits in 2usize..16) {
        use adcache_lsm::BloomFilter;
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let f = BloomFilter::build(&keys, bits);
        for k in &keys {
            prop_assert!(f.may_contain(k));
        }
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (g, _) = BloomFilter::decode(&buf).unwrap();
        for k in &keys {
            prop_assert!(g.may_contain(k));
        }
    }
}
