//! Durability tests: WAL + manifest recovery across simulated restarts.

use adcache_lsm::{
    CrashController, CrashPoint, DirectProvider, FileStorage, LsmTree, Options, Storage,
};
use bytes::Bytes;
use std::path::PathBuf;
use std::sync::Arc;

fn key(i: usize) -> Bytes {
    Bytes::from(format!("key{i:06}"))
}

fn test_dirs(name: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("adcache-recov-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    (base.join("sst"), base.join("meta"))
}

fn cleanup(name: &str) {
    let base = std::env::temp_dir().join(format!("adcache-recov-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn restart_recovers_flushed_and_unflushed_data() {
    let (sst_dir, meta_dir) = test_dirs("basic");
    {
        let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
        let db = LsmTree::with_durability(Options::small(), storage, &meta_dir).unwrap();
        // Enough to force flushes + compactions, plus a memtable tail that
        // only the WAL protects.
        for i in 0..3000 {
            db.put(key(i), Bytes::from(format!("v{i}"))).unwrap();
        }
        for i in (0..3000).step_by(5) {
            db.delete(key(i)).unwrap();
        }
        assert!(db.memtable_len() > 0, "test needs an unflushed tail");
        // Simulated crash: drop without flushing the memtable.
    }
    let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
    let db = LsmTree::with_durability(Options::small(), storage, &meta_dir).unwrap();
    let p = DirectProvider;
    for i in 0..3000 {
        let got = db.get(&key(i), &p).unwrap();
        if i % 5 == 0 {
            assert!(got.is_none(), "deleted key {i} resurrected after restart");
        } else {
            assert_eq!(got.unwrap().as_ref(), format!("v{i}").as_bytes(), "key {i}");
        }
    }
    // Scans also see the recovered state.
    let scan = db.scan(&key(0), 10, &p).unwrap();
    assert_eq!(scan.len(), 10);
    for w in scan.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
    cleanup("basic");
}

#[test]
fn restart_continues_writing_without_id_collisions() {
    let (sst_dir, meta_dir) = test_dirs("ids");
    {
        let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
        let db = LsmTree::with_durability(Options::small(), storage, &meta_dir).unwrap();
        for i in 0..2000 {
            db.put(key(i), Bytes::from(format!("a{i}"))).unwrap();
        }
        db.flush().unwrap();
    }
    // Second life: more writes, which must allocate fresh file ids.
    {
        let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
        let db = LsmTree::with_durability(Options::small(), storage, &meta_dir).unwrap();
        for i in 1000..2500 {
            db.put(key(i), Bytes::from(format!("b{i}"))).unwrap();
        }
        db.flush().unwrap();
        while db.maybe_compact_once().unwrap() {}
    }
    // Third life: everything readable, newest wins.
    let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
    let db = LsmTree::with_durability(Options::small(), storage, &meta_dir).unwrap();
    let p = DirectProvider;
    for i in (0..2500).step_by(83) {
        let got = db.get(&key(i), &p).unwrap().unwrap();
        let want = if i >= 1000 {
            format!("b{i}")
        } else {
            format!("a{i}")
        };
        assert_eq!(got.as_ref(), want.as_bytes(), "key {i}");
    }
    cleanup("ids");
}

#[test]
fn wal_truncates_on_flush_and_replays_only_the_tail() {
    let (sst_dir, meta_dir) = test_dirs("tail");
    {
        let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
        let db = LsmTree::with_durability(Options::small(), storage, &meta_dir).unwrap();
        for i in 0..500 {
            db.put(key(i), Bytes::from_static(b"flushed")).unwrap();
        }
        db.flush().unwrap();
        let wal_len = std::fs::metadata(meta_dir.join("wal.log")).unwrap().len();
        assert_eq!(wal_len, 0, "flush must truncate the WAL");
        db.put(key(9999), Bytes::from_static(b"tail")).unwrap();
        let wal_len = std::fs::metadata(meta_dir.join("wal.log")).unwrap().len();
        assert!(wal_len > 0);
    }
    let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
    let db = LsmTree::with_durability(Options::small(), storage, &meta_dir).unwrap();
    assert_eq!(db.memtable_len(), 1, "only the tail write replays");
    let p = DirectProvider;
    assert_eq!(db.get(&key(9999), &p).unwrap().unwrap().as_ref(), b"tail");
    assert_eq!(db.get(&key(42), &p).unwrap().unwrap().as_ref(), b"flushed");
    cleanup("tail");
}

#[test]
fn mem_storage_with_durability_dir_still_replays_wal() {
    // Durability metadata is orthogonal to the block device: even a
    // volatile MemStorage engine can use the WAL to checkpoint the
    // memtable (useful in tests and simulations).
    let (_, meta_dir) = test_dirs("mem");
    let storage = Arc::new(adcache_lsm::MemStorage::new());
    {
        let db = LsmTree::with_durability(Options::small(), storage.clone(), &meta_dir).unwrap();
        db.put(key(1), Bytes::from_static(b"v1")).unwrap();
    }
    // Same storage Arc survives "restart" (the process keeps the device).
    let db = LsmTree::with_durability(Options::small(), storage, &meta_dir).unwrap();
    let p = DirectProvider;
    assert_eq!(db.get(&key(1), &p).unwrap().unwrap().as_ref(), b"v1");
    cleanup("mem");
}

#[test]
fn crash_between_flush_and_commit_leaves_no_orphan_and_no_id_collision() {
    // Regression: a crash after the SST write but before the manifest
    // commit leaves an unreferenced table on disk holding a file id the
    // lost manifest never recorded. Without the recovery sweep, the
    // reopened engine re-allocates that id and every flush fails forever
    // with "file already exists".
    let (sst_dir, meta_dir) = test_dirs("orphan");
    let mut opts = Options::small();
    opts.memtable_size = 1 << 10;
    {
        let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
        let db = LsmTree::with_durability(opts.clone(), storage.clone(), &meta_dir).unwrap();
        let crash = CrashController::new();
        db.set_crash_controller(crash.clone());
        crash.arm(CrashPoint::FlushAfterSst, 1);
        let mut err = None;
        for i in 0..500 {
            if let Err(e) = db.put(key(i), Bytes::from(format!("v{i}"))) {
                err = Some(e);
                break;
            }
        }
        assert!(err.is_some(), "the armed crash point must fire");
        assert!(crash.fired());
        // The orphan exists: one more table on disk than any manifest
        // (there is none yet) references.
        assert!(storage.table_count() >= 1, "crash left the orphan SST");
        // Simulated process death.
    }
    let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
    let db = LsmTree::with_durability(opts, storage.clone(), &meta_dir).unwrap();
    // The sweep removed every unreferenced table...
    let live = db
        .level_summary()
        .iter()
        .map(|(_, files, _)| files)
        .sum::<usize>();
    assert_eq!(storage.table_count(), live, "orphans must be swept at open");
    assert!(
        db.stats()
            .orphan_tables_swept
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the sweep must report what it deleted"
    );
    // ...and the WAL still covers the crashed writes.
    let p = DirectProvider;
    assert!(db.get(&key(0), &p).unwrap().is_some());
    // The engine keeps working: new flushes allocate ids past everything
    // that was ever on the device, so nothing collides.
    for i in 0..500 {
        db.put(key(i), Bytes::from(format!("w{i}"))).unwrap();
    }
    db.flush().unwrap();
    assert_eq!(db.get(&key(7), &p).unwrap().unwrap().as_ref(), b"w7");
    cleanup("orphan");
}

#[test]
fn recovery_preserves_level_structure() {
    let (sst_dir, meta_dir) = test_dirs("levels");
    let (runs_before, levels_before);
    {
        let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
        let db = LsmTree::with_durability(Options::small(), storage, &meta_dir).unwrap();
        for i in 0..10_000 {
            db.put(key(i % 2500), Bytes::from(format!("v{i}"))).unwrap();
        }
        db.flush().unwrap();
        runs_before = db.num_runs();
        levels_before = db.num_levels();
        assert!(levels_before >= 2, "need a multi-level tree for this test");
    }
    let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
    let db = LsmTree::with_durability(Options::small(), storage.clone(), &meta_dir).unwrap();
    assert_eq!(db.num_runs(), runs_before);
    assert_eq!(db.num_levels(), levels_before);
    // No orphan tables: storage holds exactly the live files.
    let live = db
        .level_summary()
        .iter()
        .map(|(_, files, _)| files)
        .sum::<usize>();
    assert_eq!(storage.table_count(), live);
    cleanup("levels");
}
