//! Property test: for any operation sequence and any crash point (process
//! drop without flush), a durable engine recovers to exactly the model
//! state — every write is either in an SSTable referenced by the manifest
//! or in the WAL.

use adcache_lsm::{DirectProvider, FileStorage, LsmTree, Options};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 300, v)),
        2 => any::<u16>().prop_map(|k| Op::Delete(k % 300)),
        1 => Just(Op::Flush),
    ]
}

fn key(k: u16) -> Bytes {
    Bytes::from(format!("key{k:05}"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn recovery_equals_model_at_any_crash_point(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        crash_at_frac in 0.0f64..1.0,
        case_id in any::<u64>(),
    ) {
        let base = std::env::temp_dir().join(format!(
            "adcache-precov-{}-{case_id}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let sst_dir = base.join("sst");
        let meta_dir = base.join("meta");

        let crash_at = ((ops.len() as f64) * crash_at_frac) as usize;
        let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();
        let mut tiny = Options::small();
        tiny.memtable_size = 2048;
        tiny.sstable_size = 2048;

        // First life: run until the crash point, then drop.
        {
            let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
            let db = LsmTree::with_durability(tiny.clone(), storage, &meta_dir).unwrap();
            for op in ops.iter().take(crash_at) {
                match op {
                    Op::Put(k, v) => {
                        let value = Bytes::from(format!("v{k}-{v}"));
                        model.insert(key(*k), value.clone());
                        db.put(key(*k), value).unwrap();
                    }
                    Op::Delete(k) => {
                        model.remove(&key(*k));
                        db.delete(key(*k)).unwrap();
                    }
                    Op::Flush => db.flush().unwrap(),
                }
            }
            // Crash: drop without flushing.
        }

        // Second life: recover and verify against the model.
        let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
        let db = LsmTree::with_durability(tiny, storage, &meta_dir).unwrap();
        let p = DirectProvider;
        for k in 0..300u16 {
            let got = db.get(&key(k), &p).unwrap();
            prop_assert_eq!(got.as_ref(), model.get(&key(k)), "key {} after crash at {}", k, crash_at);
        }
        let scan = db.scan(b"", 1024, &p).unwrap();
        let want: Vec<(Bytes, Bytes)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        prop_assert_eq!(scan, want);

        std::fs::remove_dir_all(&base).unwrap();
    }
}
