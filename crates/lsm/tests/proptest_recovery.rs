//! Property tests for crash recovery.
//!
//! 1. For any operation sequence and any crash point (process drop without
//!    flush), a durable engine recovers to exactly the model state — every
//!    write is either in an SSTable referenced by the manifest or in the
//!    WAL.
//! 2. Under an injected fault storm, a randomly armed internal crash
//!    point, a random sync policy, AND a modeled write-back cache that
//!    drops completed-but-unsynced writes at the crash, recovery keeps
//!    exactly what the policy promised: `always` never loses an acked
//!    write; `on_flush` never loses an acked write covered by a completed
//!    flush; `never` may lose unsynced suffixes but still serves only
//!    values that were actually written. A second recovery reproduces the
//!    first bit for bit in every case.

use adcache_lsm::{
    CrashController, CrashPoint, DirectProvider, FaultPlan, FaultStorage, FileStorage, LsmTree,
    MemStorage, Options, SimFs, SyncPolicy,
};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 300, v)),
        2 => any::<u16>().prop_map(|k| Op::Delete(k % 300)),
        1 => Just(Op::Flush),
    ]
}

fn key(k: u16) -> Bytes {
    Bytes::from(format!("key{k:05}"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn recovery_equals_model_at_any_crash_point(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        crash_at_frac in 0.0f64..1.0,
        case_id in any::<u64>(),
    ) {
        let base = std::env::temp_dir().join(format!(
            "adcache-precov-{}-{case_id}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let sst_dir = base.join("sst");
        let meta_dir = base.join("meta");

        let crash_at = ((ops.len() as f64) * crash_at_frac) as usize;
        let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();
        let mut tiny = Options::small();
        tiny.memtable_size = 2048;
        tiny.sstable_size = 2048;

        // First life: run until the crash point, then drop.
        {
            let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
            let db = LsmTree::with_durability(tiny.clone(), storage, &meta_dir).unwrap();
            for op in ops.iter().take(crash_at) {
                match op {
                    Op::Put(k, v) => {
                        let value = Bytes::from(format!("v{k}-{v}"));
                        model.insert(key(*k), value.clone());
                        db.put(key(*k), value).unwrap();
                    }
                    Op::Delete(k) => {
                        model.remove(&key(*k));
                        db.delete(key(*k)).unwrap();
                    }
                    Op::Flush => db.flush().unwrap(),
                }
            }
            // Crash: drop without flushing.
        }

        // Second life: recover and verify against the model.
        let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
        let db = LsmTree::with_durability(tiny, storage, &meta_dir).unwrap();
        let p = DirectProvider;
        for k in 0..300u16 {
            let got = db.get(&key(k), &p).unwrap();
            prop_assert_eq!(got.as_ref(), model.get(&key(k)), "key {} after crash at {}", k, crash_at);
        }
        let scan = db.scan(b"", 1024, &p).unwrap();
        let want: Vec<(Bytes, Bytes)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        prop_assert_eq!(scan, want);

        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn faulted_recovery_never_loses_acked_writes(
        ops in proptest::collection::vec(op_strategy(), 20..200),
        point_idx in 0usize..CrashPoint::all().len(),
        policy_idx in 0usize..SyncPolicy::all().len(),
        nth in 1u64..4,
        seed in any::<u64>(),
    ) {
        const KEYS: u16 = 300;
        let sync = SyncPolicy::all()[policy_idx];
        let mut tiny = Options::small();
        tiny.memtable_size = 2048;
        tiny.sstable_size = 2048;
        tiny.sync = sync;
        let meta_dir = "/pfault/meta";

        // Both device models buffer completed-but-unsynced writes: the
        // storage wrapper for SSTs, the simulated fs for WAL + manifest.
        let fs = Arc::new(SimFs::new());
        let storage = Arc::new(FaultStorage::new(
            Arc::new(MemStorage::new()),
            seed,
            FaultPlan::none(),
        ));
        storage.enable_write_back();
        let crash = CrashController::new();
        // Write history per key, in order: (value-or-tombstone, acked?,
        // sequence number). A failed op may still have reached the WAL
        // before its error, so unacked writes are candidates, not
        // forbidden states.
        let mut history: Vec<Vec<(Option<Bytes>, bool, u64)>> = vec![Vec::new(); KEYS as usize];
        let mut seq = 0u64;
        // Highest sequence covered by a fully successful flush — the
        // durability floor the `on_flush` policy promises.
        let mut flushed_seq = 0u64;

        // First life: a fault storm plus one armed crash point.
        {
            let db = LsmTree::with_durability_fs(
                tiny.clone(), storage.clone(), meta_dir, fs.clone(),
            ).unwrap();
            db.set_crash_controller(crash.clone());
            crash.arm(CrashPoint::all()[point_idx], nth);
            storage.set_plan(FaultPlan::storm());
            let mut flushes_seen = 0u64;
            for (i, op) in ops.iter().enumerate() {
                let acked = match op {
                    Op::Put(k, v) => {
                        let value = Bytes::from(format!("v{k}-{v}-{i}"));
                        seq += 1;
                        let acked = db.put(key(*k), value.clone()).is_ok();
                        history[*k as usize].push((Some(value), acked, seq));
                        acked
                    }
                    Op::Delete(k) => {
                        seq += 1;
                        let acked = db.delete(key(*k)).is_ok();
                        history[*k as usize].push((None, acked, seq));
                        acked
                    }
                    Op::Flush => db.flush().is_ok(),
                };
                if acked {
                    let f = db.stats().flushes.load(Ordering::Relaxed);
                    if f > flushes_seen {
                        flushes_seen = f;
                        flushed_seq = seq;
                    }
                }
                if crash.fired() {
                    break;
                }
            }
            // Crash: drop mid-storm...
        }

        // ...and drop whatever the write-back caches still held.
        storage.set_active(false);
        storage.crash_drop_unsynced(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        fs.crash(seed.rotate_left(17) | 1);

        // Recovery against a quiet device must succeed under EVERY policy:
        // weaker sync loses more data, never the ability to reopen.
        let db = LsmTree::with_durability_fs(
            tiny.clone(), storage.clone(), meta_dir, fs.clone(),
        ).unwrap();
        let p = DirectProvider;
        let mut state = Vec::with_capacity(KEYS as usize);
        for k in 0..KEYS {
            let got = db.get(&key(k), &p).unwrap();
            let h = &history[k as usize];
            let strong = match sync {
                SyncPolicy::Always => h.iter().rposition(|(_, acked, _)| *acked),
                SyncPolicy::OnFlush => {
                    h.iter().rposition(|(_, acked, s)| *acked && *s <= flushed_seq)
                }
                SyncPolicy::Never => None,
            };
            let matches = |want: &Option<Bytes>| got.as_deref() == want.as_deref();
            let ok = match strong {
                Some(idx) => h[idx..].iter().any(|(v, _, _)| matches(v)),
                None => got.is_none() || h.iter().any(|(v, _, _)| matches(v)),
            };
            prop_assert!(
                ok,
                "key {k} (sync={}): recovered {:?} not justified by history {:?}",
                sync.name(), got, h
            );
            state.push(got);
        }
        drop(db);

        // Second recovery must be idempotent: nothing applied twice,
        // nothing re-lost.
        let db = LsmTree::with_durability_fs(tiny, storage, meta_dir, fs).unwrap();
        for k in 0..KEYS {
            prop_assert_eq!(
                db.get(&key(k), &p).unwrap(),
                state[k as usize].clone(),
                "key {} changed between reopens (sync={})",
                k, sync.name()
            );
        }
    }
}
