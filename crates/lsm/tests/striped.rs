//! Striped-engine tests: model equivalence of the cross-stripe merge
//! (including the snapshot fence racing background flushes), recovery of a
//! striped layout, stripe isolation under a slow flush, and invariants of
//! scans running against concurrent writers.

use adcache_lsm::{
    DirectProvider, FileStorage, IoStats, MemStorage, MetaFs, Options, Result as LsmResult, SimFs,
    Storage, StripedDb,
};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u8),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 512, v)),
        1 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
        2 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        2 => (any::<u16>(), 1u8..32).prop_map(|(k, n)| Op::Scan(k % 512, n)),
        1 => Just(Op::Flush),
    ]
}

fn key(k: u16) -> Bytes {
    Bytes::from(format!("key{k:05}"))
}

fn value(k: u16, v: u8) -> Bytes {
    Bytes::from(format!("value-{k}-{v}"))
}

fn striped_opts(stripes: usize) -> Options {
    let mut tiny = Options::small();
    // Tiny structures so seals, background flushes, and compactions all
    // fire constantly under the op streams below.
    tiny.memtable_size = 2048;
    tiny.sstable_size = 2048;
    tiny.stripes = stripes;
    tiny.background_maintenance = true;
    tiny
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The striped router must behave exactly like a `BTreeMap` for any
    /// op sequence. Background maintenance is ON, so flushes run on pool
    /// workers concurrently with the scans below — every cross-stripe scan
    /// exercises the sequence fence against in-flight memtable seals.
    #[test]
    fn striped_db_matches_model_with_background_flushes(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        stripes in 2usize..=8,
    ) {
        let db = StripedDb::new(striped_opts(stripes), Arc::new(MemStorage::new())).unwrap();
        let provider = DirectProvider;
        let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    db.put(key(k), value(k, v)).unwrap();
                    model.insert(key(k), value(k, v));
                }
                Op::Delete(k) => {
                    db.delete(key(k)).unwrap();
                    model.remove(&key(k));
                }
                Op::Get(k) => {
                    let got = db.get(&key(k), &provider).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&key(k)), "get {}", k);
                }
                Op::Scan(k, n) => {
                    let got = db.scan(&key(k), n as usize, &provider).unwrap();
                    let want: Vec<(Bytes, Bytes)> = model
                        .range(key(k)..)
                        .take(n as usize)
                        .map(|(a, b)| (a.clone(), b.clone()))
                        .collect();
                    prop_assert_eq!(got, want, "scan {} {}", k, n);
                }
                Op::Flush => db.flush().unwrap(),
            }
        }

        for k in 0..512u16 {
            let got = db.get(&key(k), &provider).unwrap();
            prop_assert_eq!(got.as_ref(), model.get(&key(k)), "final get {}", k);
        }
        let got = db.scan(b"", 4096, &provider).unwrap();
        let want: Vec<(Bytes, Bytes)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        prop_assert_eq!(got, want, "final full scan");
    }

    /// Recovery of a striped layout: run with background maintenance on,
    /// crash (drop joins the pool, taking down in-flight flushes at
    /// arbitrary progress), reopen, and require exactly the model state —
    /// every write is in some stripe's SSTs, sealed WAL segments, or
    /// active WAL.
    #[test]
    fn striped_recovery_equals_model_at_any_crash_point(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        crash_at_frac in 0.0f64..1.0,
        stripes in 2usize..=8,
        case_id in any::<u64>(),
    ) {
        let base = std::env::temp_dir().join(format!(
            "adcache-striperecov-{}-{case_id}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let sst_dir = base.join("sst");
        let meta_dir = base.join("meta");
        let crash_at = ((ops.len() as f64) * crash_at_frac) as usize;
        let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();
        let opts = striped_opts(stripes);

        {
            let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
            let db = StripedDb::with_durability(opts.clone(), storage, &meta_dir).unwrap();
            for op in ops.iter().take(crash_at) {
                match op {
                    Op::Put(k, v) => {
                        db.put(key(*k), value(*k, *v)).unwrap();
                        model.insert(key(*k), value(*k, *v));
                    }
                    Op::Delete(k) => {
                        db.delete(key(*k)).unwrap();
                        model.remove(&key(*k));
                    }
                    Op::Flush => db.flush().unwrap(),
                    _ => {}
                }
            }
            // Crash: drop without flushing (joins the worker pool).
        }

        let storage = Arc::new(FileStorage::open(&sst_dir).unwrap());
        let mut verify = opts;
        verify.background_maintenance = false;
        let db = StripedDb::with_durability(verify, storage, &meta_dir).unwrap();
        let p = DirectProvider;
        for k in 0..512u16 {
            let got = db.get(&key(k), &p).unwrap();
            prop_assert_eq!(
                got.as_ref(),
                model.get(&key(k)),
                "key {} after crash at {} ({} stripes)",
                k, crash_at, stripes
            );
        }
        let scan = db.scan(b"", 4096, &p).unwrap();
        let want: Vec<(Bytes, Bytes)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        prop_assert_eq!(scan, want);

        std::fs::remove_dir_all(&base).unwrap();
    }
}

/// A storage decorator that makes SST builds for ONE stripe's file-id
/// residue class slow, modeling a stripe stuck behind a large flush.
struct SlowFlushStorage {
    inner: Arc<MemStorage>,
    stripes: u64,
    slow_residue: u64,
    delay: Duration,
    engaged: AtomicBool,
}

impl Storage for SlowFlushStorage {
    fn write_table(&self, id: u64, blocks: Vec<Bytes>, meta: Bytes) -> LsmResult<()> {
        if self.engaged.load(Ordering::Relaxed) && id % self.stripes == self.slow_residue {
            std::thread::sleep(self.delay);
        }
        self.inner.write_table(id, blocks, meta)
    }
    fn read_block(&self, id: u64, block_no: u32) -> LsmResult<Bytes> {
        self.inner.read_block(id, block_no)
    }
    fn read_meta(&self, id: u64) -> LsmResult<Bytes> {
        self.inner.read_meta(id)
    }
    fn delete_table(&self, id: u64) -> LsmResult<()> {
        self.inner.delete_table(id)
    }
    fn sync_table(&self, id: u64) -> LsmResult<()> {
        self.inner.sync_table(id)
    }
    fn sync_dir(&self) -> LsmResult<()> {
        self.inner.sync_dir()
    }
    fn list_tables(&self) -> Vec<u64> {
        self.inner.list_tables()
    }
    fn sync_cost_ns(&self) -> u64 {
        self.inner.sync_cost_ns()
    }
    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
    fn table_count(&self) -> usize {
        self.inner.table_count()
    }
}

/// The backpressure contract: a writer stalls only on its OWN stripe.
/// Stripe A's flush is made pathologically slow; foreground puts on
/// stripe B must still complete with bounded latency while that flush is
/// in flight.
#[test]
fn foreground_put_is_bounded_while_another_stripes_flush_is_slow() {
    const STRIPES: usize = 2;
    const DELAY: Duration = Duration::from_millis(600);

    let mut opts = striped_opts(STRIPES);
    opts.memtable_size = 2048;
    let storage = Arc::new(SlowFlushStorage {
        inner: Arc::new(MemStorage::new()),
        stripes: STRIPES as u64,
        // Stripe 1's file ids are ≡ 1 (mod stripes) under stride
        // allocation, so only its SST builds sleep.
        slow_residue: 1,
        delay: DELAY,
        engaged: AtomicBool::new(false),
    });
    let db = StripedDb::new(opts, storage.clone()).unwrap();

    // Sort keys by owning stripe.
    let mut a_keys = Vec::new();
    let mut b_keys = Vec::new();
    for k in 0..4096u32 {
        let key = Bytes::from(format!("iso{k:05}"));
        match db.stripe_for(&key) {
            1 => a_keys.push(key),
            0 => b_keys.push(key),
            _ => unreachable!(),
        }
    }
    assert!(
        a_keys.len() > 200 && b_keys.len() > 200,
        "routing is lopsided"
    );

    storage.engaged.store(true, Ordering::Relaxed);
    // Blow through stripe A's memtable budget: the seal hands the flush to
    // a pool worker, which then sleeps inside write_table.
    let pad = "p".repeat(64);
    for k in a_keys.iter().take(64) {
        db.put(k.clone(), Bytes::from(format!("slow-{pad}")))
            .unwrap();
    }
    // Give the worker a moment to reach the slow SST build.
    std::thread::sleep(Duration::from_millis(20));

    // Foreground writes on stripe B while A's flush sleeps: each must be
    // orders of magnitude faster than the in-flight delay.
    let started = Instant::now();
    let mut worst = Duration::ZERO;
    for k in b_keys.iter().take(32) {
        let t0 = Instant::now();
        db.put(k.clone(), Bytes::from("fast")).unwrap();
        worst = worst.max(t0.elapsed());
    }
    assert!(
        worst < DELAY / 3,
        "stripe-B put took {worst:?} while stripe A flushed (delay {DELAY:?})"
    );
    assert!(
        started.elapsed() < DELAY,
        "stripe-B writes did not overlap stripe A's flush"
    );

    // Everything still lands once the slow flush drains.
    storage.engaged.store(false, Ordering::Relaxed);
    db.flush().unwrap();
    let p = DirectProvider;
    for k in a_keys.iter().take(64) {
        assert!(db.get(k, &p).unwrap().is_some(), "stripe-A write lost");
    }
    for k in b_keys.iter().take(32) {
        assert_eq!(db.get(k, &p).unwrap().as_deref(), Some(b"fast".as_ref()));
    }
    assert!(
        db.stats_sum(|s| s.seals()) >= 1,
        "stripe A never sealed — the test exercised nothing"
    );
}

/// A [`MetaFs`] decorator that sleeps inside `remove`. WAL segment
/// deletion runs in `flush()`'s imm drain *after* the engine write lock is
/// released, so the sleep stretches the seal-vs-explicit-flush race window
/// from nanoseconds to milliseconds — wide enough for writers to seal a
/// fresh imm (and land more batches) before `flush()` reacquires the lock.
struct SlowRemoveFs {
    inner: SimFs,
    delay: Duration,
}

impl MetaFs for SlowRemoveFs {
    fn create_dir_all(&self, path: &std::path::Path) -> LsmResult<()> {
        self.inner.create_dir_all(path)
    }
    fn read(&self, path: &std::path::Path) -> LsmResult<Option<Vec<u8>>> {
        self.inner.read(path)
    }
    fn write_file(&self, path: &std::path::Path, data: &[u8]) -> LsmResult<()> {
        self.inner.write_file(path, data)
    }
    fn append(&self, path: &std::path::Path, data: &[u8]) -> LsmResult<()> {
        self.inner.append(path, data)
    }
    fn truncate(&self, path: &std::path::Path, len: u64) -> LsmResult<()> {
        self.inner.truncate(path, len)
    }
    fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> LsmResult<()> {
        self.inner.rename(from, to)
    }
    fn remove(&self, path: &std::path::Path) -> LsmResult<()> {
        std::thread::sleep(self.delay);
        self.inner.remove(path)
    }
    fn exists(&self, path: &std::path::Path) -> bool {
        self.inner.exists(path)
    }
    fn len(&self, path: &std::path::Path) -> LsmResult<u64> {
        self.inner.len(path)
    }
    fn sync_file(&self, path: &std::path::Path) -> LsmResult<()> {
        self.inner.sync_file(path)
    }
    fn sync_dir(&self, dir: &std::path::Path) -> LsmResult<()> {
        self.inner.sync_dir(dir)
    }
    fn list_dir(&self, dir: &std::path::Path) -> LsmResult<Vec<std::path::PathBuf>> {
        self.inner.list_dir(dir)
    }
}

/// Regression: an explicit `flush()` must never flush the active memtable
/// ahead of a sealed-but-unflushed imm. A writer can seal a fresh imm in
/// the window between `flush()`'s imm drain and its write-lock
/// acquisition (sealing needs only the write lock); flushing mem then
/// would (a) delete the sealed WAL segment covering the pending imm
/// without flushing its records — lost acked writes on crash — and
/// (b) give the older imm records a higher file id, L0-newest rank, so
/// they shadow newer values even without a crash. This drives that
/// window: [`SlowRemoveFs`] holds `flush()` in its post-lock segment
/// deletion while writers seal over a hot key set; afterwards every key
/// must read back the last value its writer acked.
#[test]
fn explicit_flush_racing_seals_never_reorders_writes() {
    let mut opts = striped_opts(1);
    opts.memtable_size = 1024;
    let fs = Arc::new(SlowRemoveFs {
        inner: SimFs::new(),
        delay: Duration::from_millis(1),
    });
    let db = Arc::new(
        StripedDb::with_durability_fs(opts, Arc::new(MemStorage::new()), "/race", fs).unwrap(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let flusher = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.flush().unwrap();
            }
        })
    };

    // Several writers so the write lock stays contended: a seal landing in
    // flush()'s window is immediately followed by another writer's batch
    // in the fresh memtable — the state that must not be flushed ahead of
    // the pending imm.
    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut last: BTreeMap<Bytes, Bytes> = BTreeMap::new();
                let pad = "x".repeat(48);
                for i in 0..2500u64 {
                    let k = Bytes::from(format!("rf{t}-{:03}", i % 32));
                    let v = Bytes::from(format!("v{i}-{pad}"));
                    db.put(k.clone(), v.clone()).unwrap();
                    last.insert(k, v);
                }
                last
            })
        })
        .collect();

    let mut last: BTreeMap<Bytes, Bytes> = BTreeMap::new();
    for w in writers {
        last.extend(w.join().unwrap());
    }
    stop.store(true, Ordering::Relaxed);
    flusher.join().unwrap();
    db.flush().unwrap();
    let p = DirectProvider;
    for (k, v) in &last {
        let got = db.get(k, &p).unwrap();
        assert_eq!(
            got.as_ref(),
            Some(v),
            "stale value shadowed the newest write for {k:?}"
        );
    }
}

/// A persistent maintenance failure (e.g. disk full) must not spin the
/// background worker: retries are re-kicked on an exponential backoff, so
/// the number of flush attempts over a window stays small. Without the
/// backoff the worker re-kicks in a tight loop — thousands of attempts
/// (and partial SSTs) per second.
#[test]
fn background_worker_backs_off_on_persistent_flush_errors() {
    use adcache_lsm::{FaultPlan, FaultStorage};

    let mut opts = striped_opts(1);
    opts.memtable_size = 512;
    let storage = Arc::new(FaultStorage::new(
        Arc::new(MemStorage::new()),
        7,
        FaultPlan {
            write_fail: 1.0,
            ..FaultPlan::none()
        },
    ));
    let db = StripedDb::new(opts, storage.clone()).unwrap();

    // Fill past the memtable budget so a seal hands the (always-failing)
    // flush to the pool.
    for i in 0..16u32 {
        db.put(
            Bytes::from(format!("bo{i:03}")),
            Bytes::from(vec![b'x'; 64]),
        )
        .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while db.stats_sum(|s| s.seals()) == 0 {
        assert!(Instant::now() < deadline, "no seal happened");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Let the worker retry for a while; with 1 ms-doubling backoff it gets
    // ~10 attempts in this window, without it thousands.
    std::thread::sleep(Duration::from_millis(300));
    let attempts = storage.fault_stats().write_fail.load(Ordering::Relaxed);
    assert!(attempts >= 1, "the failing flush was never attempted");
    assert!(
        attempts <= 30,
        "{attempts} flush attempts in 300 ms — worker is spinning, not backing off"
    );
    assert!(!db.is_poisoned(), "transient I/O errors must not poison");

    // Once the device recovers, the pending imm drains and reads succeed.
    storage.set_active(false);
    db.flush().unwrap();
    let p = DirectProvider;
    for i in 0..16u32 {
        assert!(
            db.get(format!("bo{i:03}").as_bytes(), &p)
                .unwrap()
                .is_some(),
            "write lost after device recovery"
        );
    }
}

/// Cross-stripe scans racing live writers: results must always be sorted,
/// every key must carry a value some writer actually wrote, and keys
/// committed before the scan epoch must be visible.
#[test]
fn concurrent_scans_see_sorted_prefix_consistent_snapshots() {
    const STRIPES: usize = 4;
    let mut opts = striped_opts(STRIPES);
    opts.memtable_size = 1024;
    let db = Arc::new(StripedDb::new(opts, Arc::new(MemStorage::new())).unwrap());

    // A stable prefix committed before any scanning begins.
    let p = DirectProvider;
    for k in 0..64u32 {
        db.put(
            Bytes::from(format!("stable{k:04}")),
            Bytes::from(format!("s{k}")),
        )
        .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = (w * 1000 + i) % 512;
                    db.put(
                        Bytes::from(format!("hot{k:04}")),
                        Bytes::from(format!("w{w}-{i}")),
                    )
                    .unwrap();
                    i += 1;
                }
            })
        })
        .collect();

    for _ in 0..200 {
        let got = db.scan(b"", 1024, &p).unwrap();
        // Sorted, unique keys.
        for w in got.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "scan out of order: {:?} !< {:?}",
                w[0].0,
                w[1].0
            );
        }
        // The pre-scan prefix is fully visible with its exact values.
        let stable: Vec<_> = got
            .iter()
            .filter(|(k, _)| k.starts_with(b"stable"))
            .collect();
        assert_eq!(stable.len(), 64, "stable keys missing from scan");
        for (k, v) in stable {
            let n: u32 = std::str::from_utf8(&k[6..]).unwrap().parse().unwrap();
            assert_eq!(v.as_ref(), format!("s{n}").as_bytes());
        }
        // Hot keys carry well-formed writer values.
        for (k, v) in got.iter().filter(|(k, _)| k.starts_with(b"hot")) {
            assert!(
                v.starts_with(b"w0-") || v.starts_with(b"w1-"),
                "key {:?} has value {:?} no writer produced",
                k,
                v
            );
        }
    }

    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    assert!(!db.is_poisoned());
}
