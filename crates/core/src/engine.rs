//! The cached database engine: LSM-tree + cache strategy wiring.
//!
//! [`CachedDb`] implements the paper's query-handling path (Figure 5):
//! a query first consults the range cache, then the engine (memtable →
//! block cache → disk); retrieved results flow back through the cache-fill
//! path subject to admission control. Six configurations — the five
//! baselines of Section 5.1 plus AdCache itself — share this one engine,
//! differing only in which caches exist and how admission behaves.

use crate::controller::CacheDecision;
use crate::stats::{Counters, Snapshot, WindowSummary};
use crate::tenant::{Partition, TenantId, TenantWindow, DEFAULT_TENANT};
use adcache_cache::{BlockCache, CompactionPrefetcher, PointLookup, RangeCache, ScanAdmission};
use adcache_lsm::{DirectProvider, Key, Options, Result, Storage, StripedDb, Value};
use adcache_obs::{AdmissionOutcome, AdmissionReason, CacheStructure, Counter, Event, Gauge, Obs};
use adcache_rl::{ShareAgent, TenantFeatures};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

/// The cache configuration under evaluation (paper Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// RocksDB's default: all memory in a block cache.
    RocksDbBlock,
    /// A pure key-value (row) result cache; scans bypass it.
    KvCache,
    /// Range Cache with LRU eviction (Wang et al.).
    RangeCache,
    /// Range Cache with LeCaR eviction.
    RangeCacheLeCaR,
    /// Range Cache with Cacheus eviction.
    RangeCacheCacheus,
    /// AdCache: dynamic block/range partitioning + admission control.
    AdCache,
}

impl Strategy {
    /// Display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::RocksDbBlock => "rocksdb-block",
            Strategy::KvCache => "kv-cache",
            Strategy::RangeCache => "range-cache",
            Strategy::RangeCacheLeCaR => "range-lecar",
            Strategy::RangeCacheCacheus => "range-cacheus",
            Strategy::AdCache => "adcache",
        }
    }

    /// All six evaluated strategies, in the paper's presentation order.
    pub fn all() -> [Strategy; 6] {
        [
            Strategy::RocksDbBlock,
            Strategy::KvCache,
            Strategy::RangeCache,
            Strategy::RangeCacheLeCaR,
            Strategy::RangeCacheCacheus,
            Strategy::AdCache,
        ]
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Which cache strategy to instantiate.
    pub strategy: Strategy,
    /// Total cache memory budget in bytes (block + result caches share it).
    pub total_cache_bytes: usize,
    /// Shard count for the block cache and (via boundaries) range cache.
    pub block_shards: usize,
    /// Key-space split points for range-cache sharding (empty = 1 shard).
    pub range_boundaries: Vec<Bytes>,
    /// Expected distinct hot keys (sizes the admission sketch).
    pub expected_keys: usize,
    /// Minimum boundary move (fraction of total memory) that triggers a
    /// resize; smaller moves are deferred (ablation: set 0.0 to disable).
    pub boundary_hysteresis: f64,
    /// Serve partially-covered scans from the range cache and read only
    /// the tail from the LSM (ablation: false = all-or-nothing lookups).
    pub serve_partial_range: bool,
    /// Leaper-inspired extension: after each rewriting compaction, reload
    /// this many leading blocks of every output file into the block cache
    /// (0 = off, the paper's configuration).
    pub compaction_prefetch_blocks: usize,
    /// Whether the admission sketch's anomaly guard is armed (auto reset +
    /// re-salt when saturation/decay telemetry looks adversarial).
    pub sketch_guard: bool,
    /// Guaranteed minimum share of the cache budget per registered
    /// tenant: the share arbiter can never starve a tenant below this
    /// fraction (clamped to `1/n` when infeasible for `n` tenants).
    pub min_tenant_share: f64,
    /// Whether registering a tenant creates a shared-nothing cache
    /// partition for it. Off = tenants are labels only: every tenant
    /// shares the default partition and no share arbitration runs (the
    /// `tenantcheck` drill's defenses-off baseline).
    pub tenant_partitioning: bool,
}

impl EngineConfig {
    /// Single-client configuration with one shard everywhere.
    pub fn new(strategy: Strategy, total_cache_bytes: usize) -> Self {
        EngineConfig {
            strategy,
            total_cache_bytes,
            block_shards: 1,
            range_boundaries: Vec::new(),
            expected_keys: 100_000,
            boundary_hysteresis: 0.02,
            serve_partial_range: true,
            compaction_prefetch_blocks: 0,
            sketch_guard: true,
            min_tenant_share: 0.1,
            tenant_partitioning: true,
        }
    }
}

/// Pre-resolved observability handles for the engine's admission paths
/// (see `BlockCache` in `adcache-cache` for the pattern: registered once on
/// attach, lock-free afterwards, absent = inert).
struct EngineObsHooks {
    obs: Obs,
    admission_accepts: Counter,
    admission_rejects: Counter,
    admission_partials: Counter,
    boundary_resizes: Counter,
    boundary_block_bytes: Gauge,
    boundary_range_bytes: Gauge,
    tenant_resizes: Counter,
}

impl EngineObsHooks {
    fn new(obs: Obs) -> Self {
        EngineObsHooks {
            admission_accepts: obs.counter("core.admission.accepts"),
            admission_rejects: obs.counter("core.admission.rejects"),
            admission_partials: obs.counter("core.admission.partials"),
            boundary_resizes: obs.counter("core.boundary.resizes"),
            boundary_block_bytes: obs.gauge("core.boundary.block_bytes"),
            boundary_range_bytes: obs.gauge("core.boundary.range_bytes"),
            tenant_resizes: obs.counter("core.tenant.resizes"),
            obs,
        }
    }

    /// Journals one admission verdict and bumps the matching counter.
    fn admission(
        &self,
        cache: CacheStructure,
        outcome: AdmissionOutcome,
        reason: AdmissionReason,
        requested: u64,
        admitted: u64,
    ) {
        match outcome {
            AdmissionOutcome::Accept => self.admission_accepts.inc(),
            AdmissionOutcome::Reject => self.admission_rejects.inc(),
            AdmissionOutcome::Partial => self.admission_partials.inc(),
        }
        self.obs.emit(|| Event::Admission {
            cache,
            outcome,
            reason,
            requested,
            admitted,
        });
    }
}

/// An LSM-tree fronted by the configured cache strategy. The tree itself
/// is a [`StripedDb`]: N keyspace stripes with independent write paths
/// (one stripe, synchronous maintenance by default).
///
/// The cache layer is tenant-partitioned (see [`crate::tenant`]): every
/// registered tenant owns a shared-nothing [`Partition`] sized by its
/// share of `total_cache_bytes`, and legacy single-tenant callers run
/// entirely inside the default partition (tenant 0, share 1.0), which
/// preserves the pre-tenant behavior bit for bit.
pub struct CachedDb {
    db: StripedDb,
    strategy: Strategy,
    /// Tenant 0's partition — the whole cache layer until other tenants
    /// register. Kept out of the map so the legacy fast path never takes
    /// the registry lock.
    default_partition: Arc<Partition>,
    /// Non-default tenant partitions, keyed by tenant id.
    tenants: RwLock<BTreeMap<TenantId, Arc<Partition>>>,
    /// The learned share arbiter; rebuilt when the tenant set changes.
    share_agent: Mutex<Option<ShareAgent>>,
    /// Construction parameters retained for late tenant registration.
    cfg: EngineConfig,
    scan_admission: RwLock<ScanAdmission>,
    total_cache_bytes: usize,
    /// Cached entries-per-block estimate, refreshed once per window.
    b_estimate: RwLock<f64>,
    /// The last applied range ratio (boundary hysteresis).
    applied_ratio: RwLock<f64>,
    /// Boundary moves smaller than this fraction of total memory are
    /// deferred: resizing evicts, so micro-jitter from RL exploration must
    /// not thrash the caches (the eviction-churn concern of Section 3.5).
    ratio_hysteresis: f64,
    /// Whether partially-covered scans serve their cached prefix.
    serve_partial_range: bool,
    /// Present when post-compaction prefetching is enabled; its read count
    /// is excluded from the query SST-read metric.
    prefetcher: Option<Arc<CompactionPrefetcher>>,
    counters: Counters,
    obs: OnceLock<EngineObsHooks>,
}

impl CachedDb {
    /// Builds the engine over `storage` with the given strategy.
    pub fn new(opts: Options, storage: Arc<dyn Storage>, cfg: EngineConfig) -> Result<Self> {
        let db = StripedDb::new(opts, storage)?;
        Self::from_tree(db, cfg)
    }

    /// Builds the engine over a durable tree: the WAL and manifest in
    /// `meta_dir` make the store recoverable across restarts (see
    /// [`StripedDb::with_durability`]).
    pub fn with_durability(
        opts: Options,
        storage: Arc<dyn Storage>,
        meta_dir: impl Into<std::path::PathBuf>,
        cfg: EngineConfig,
    ) -> Result<Self> {
        let db = StripedDb::with_durability(opts, storage, meta_dir)?;
        Self::from_tree(db, cfg)
    }

    /// [`CachedDb::with_durability`] over an explicit [`adcache_lsm::MetaFs`],
    /// so crash drills can interpose a simulated write-back cache under the
    /// WAL and manifest (see [`StripedDb::with_durability_fs`]).
    pub fn with_durability_fs(
        opts: Options,
        storage: Arc<dyn Storage>,
        meta_dir: impl Into<std::path::PathBuf>,
        fs: Arc<dyn adcache_lsm::MetaFs>,
        cfg: EngineConfig,
    ) -> Result<Self> {
        let db = StripedDb::with_durability_fs(opts, storage, meta_dir, fs)?;
        Self::from_tree(db, cfg)
    }

    /// Wraps an already-constructed (possibly recovered) striped tree with
    /// the cache strategy.
    pub fn from_tree(db: StripedDb, cfg: EngineConfig) -> Result<Self> {
        let total = cfg.total_cache_bytes;
        // Start at the default even split; the controller moves it.
        let d = CacheDecision::default();
        let default_partition = Arc::new(Partition::build(
            DEFAULT_TENANT,
            &cfg,
            total,
            d.range_ratio,
            d.point_threshold,
        ));
        default_partition.set_share(1.0);
        // Compactions must sweep stale blocks out of the block cache.
        if let Some(bc) = &default_partition.block_cache {
            db.add_compaction_listener(bc.clone());
        }
        // Optional Leaper-style re-population after the sweep. Listener
        // order matters: invalidate first, then prefetch. Prefetch warms
        // the default partition only — it has no requesting tenant.
        let prefetcher = match (
            &default_partition.block_cache,
            cfg.compaction_prefetch_blocks,
        ) {
            (Some(bc), n) if n > 0 => {
                let p = Arc::new(CompactionPrefetcher::new(
                    bc.clone(),
                    db.storage().clone(),
                    n,
                ));
                db.add_compaction_listener(p.clone());
                Some(p)
            }
            _ => None,
        };
        Ok(CachedDb {
            db,
            strategy: cfg.strategy,
            default_partition,
            tenants: RwLock::new(BTreeMap::new()),
            share_agent: Mutex::new(None),
            scan_admission: RwLock::new(ScanAdmission::default()),
            total_cache_bytes: total,
            b_estimate: RwLock::new(4.0),
            applied_ratio: RwLock::new(CacheDecision::default().range_ratio),
            ratio_hysteresis: cfg.boundary_hysteresis,
            serve_partial_range: cfg.serve_partial_range,
            prefetcher,
            counters: Counters::default(),
            obs: OnceLock::new(),
            cfg,
        })
    }

    /// Attaches an observability handle to the engine and every layer
    /// below it: the LSM-tree (flush/compaction/WAL events) and each cache
    /// structure the strategy instantiated. A second call is a no-op.
    pub fn set_obs(&self, obs: Obs) {
        self.db.set_obs(obs.clone());
        for part in self.all_partitions() {
            part.attach_obs(&obs);
        }
        let _ = self.obs.set(EngineObsHooks::new(obs));
        // Publish the current boundary position so live views see it
        // before the first controller decision moves it.
        if let Some(h) = self.obs.get() {
            let ratio = *self.applied_ratio.read();
            let range_bytes = (self.total_cache_bytes as f64 * ratio) as usize;
            h.boundary_range_bytes.set(range_bytes as i64);
            h.boundary_block_bytes
                .set((self.total_cache_bytes - range_bytes) as i64);
        }
    }

    /// The attached observability handle (disabled when none was attached).
    pub fn obs(&self) -> Obs {
        self.obs.get().map(|h| h.obs.clone()).unwrap_or_default()
    }

    /// The strategy in force.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The underlying striped LSM-tree (read-only experiment
    /// introspection).
    pub fn db(&self) -> &StripedDb {
        &self.db
    }

    /// The shared operation counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The default tenant's block cache, when the strategy has one.
    pub fn block_cache(&self) -> Option<&BlockCache> {
        self.default_partition.block_cache.as_deref()
    }

    /// The default tenant's range cache, when the strategy has one.
    pub fn range_cache(&self) -> Option<&RangeCache> {
        self.default_partition.range_cache.as_ref()
    }

    /// Auto-resets the admission sketch's anomaly guard has performed,
    /// summed over every tenant partition (0 when the strategy has no
    /// point admission).
    pub fn sketch_resets(&self) -> u64 {
        self.all_partitions()
            .iter()
            .map(|p| {
                p.point_admission
                    .as_ref()
                    .map_or(0, |adm| adm.lock().resets())
            })
            .sum()
    }

    /// The default tenant's partition plus every registered tenant's,
    /// in tenant-id order.
    fn all_partitions(&self) -> Vec<Arc<Partition>> {
        let mut v = vec![self.default_partition.clone()];
        v.extend(self.tenants.read().values().cloned());
        v
    }

    /// The partition serving `tenant` (the default partition for tenant
    /// 0 and for tenants never registered — unregistered traffic is
    /// legacy traffic, not a fresh partition).
    pub fn partition_for(&self, tenant: TenantId) -> Arc<Partition> {
        if tenant == DEFAULT_TENANT {
            return self.default_partition.clone();
        }
        self.tenants
            .read()
            .get(&tenant)
            .cloned()
            .unwrap_or_else(|| self.default_partition.clone())
    }

    /// Registers `tenant`, creating its shared-nothing partition (with a
    /// tenant-salted admission sketch) and rebalancing all shares to the
    /// equal split. Idempotent; tenant 0 always exists.
    pub fn register_tenant(&self, tenant: TenantId) {
        if tenant == DEFAULT_TENANT
            || !self.cfg.tenant_partitioning
            || self.tenants.read().contains_key(&tenant)
        {
            return;
        }
        let threshold = self
            .default_partition
            .point_admission
            .as_ref()
            .map_or(CacheDecision::default().point_threshold, |adm| {
                adm.lock().threshold()
            });
        let part = Arc::new(Partition::build(
            tenant,
            &self.cfg,
            0,
            *self.applied_ratio.read(),
            threshold,
        ));
        if let Some(bc) = &part.block_cache {
            self.db.add_compaction_listener(bc.clone());
        }
        if let Some(h) = self.obs.get() {
            part.attach_obs(&h.obs);
        }
        {
            let mut map = self.tenants.write();
            if map.contains_key(&tenant) {
                return; // lost a registration race; keep the winner
            }
            map.insert(tenant, part);
        }
        // The tenant set changed: restart arbitration from equal shares.
        *self.share_agent.lock() = None;
        let parts = self.all_partitions();
        let equal: Vec<(TenantId, f64)> = parts
            .iter()
            .map(|p| (p.tenant(), 1.0 / parts.len() as f64))
            .collect();
        self.set_tenant_shares(&equal);
    }

    /// The registered tenant ids (including the default tenant).
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.all_partitions().iter().map(|p| p.tenant()).collect()
    }

    /// Applies a share split across tenant partitions. Shares are passed
    /// through the guarded floor ([`adcache_rl::guarded_shares`]): they
    /// are renormalized to sum to 1 with every tenant kept at or above
    /// the configured minimum, then each partition is resized to
    /// `share × total_cache_bytes` (block/range split by the current
    /// boundary ratio). Tenants absent from `want` keep their current
    /// share as the weight. Emits one `TenantShareResized` per tenant.
    pub fn set_tenant_shares(&self, want: &[(TenantId, f64)]) {
        let parts = self.all_partitions();
        let weights: Vec<f64> = parts
            .iter()
            .map(|p| {
                want.iter()
                    .find(|(t, _)| *t == p.tenant())
                    .map_or(p.share(), |&(_, w)| w)
            })
            .collect();
        let shares = adcache_rl::guarded_shares(&weights, self.cfg.min_tenant_share);
        let ratio = *self.applied_ratio.read();
        for (part, &share) in parts.iter().zip(&shares) {
            let budget = (self.total_cache_bytes as f64 * share) as usize;
            part.set_share(share);
            part.resize(budget, ratio);
            if let Some(h) = self.obs.get() {
                h.tenant_resizes.inc();
                h.obs.emit(|| Event::TenantShareResized {
                    tenant: part.tenant() as u64,
                    share,
                    bytes: budget as u64,
                });
            }
        }
    }

    /// One share-arbitration step: drains each tenant's activity window,
    /// feeds hit-rate/footprint/demand features to the learned arbiter,
    /// and applies the new split. With fewer than two tenants this is a
    /// no-op report. Returns the `(tenant, share)` split in force.
    pub fn rebalance_tenants(&self) -> Vec<(TenantId, f64)> {
        let parts = self.all_partitions();
        if parts.len() < 2 {
            return parts.iter().map(|p| (p.tenant(), p.share())).collect();
        }
        let windows: Vec<TenantWindow> = parts.iter().map(|p| p.window()).collect();
        let ids: Vec<TenantId> = parts.iter().map(|p| p.tenant()).collect();
        let shares = {
            let mut slot = self.share_agent.lock();
            let rebuild = !matches!(&*slot, Some(a) if a.ids() == ids.as_slice());
            if rebuild {
                let mut agent = ShareAgent::new(ids, self.cfg.min_tenant_share);
                for p in &parts {
                    agent.seed_share(p.tenant(), p.share());
                }
                *slot = Some(agent);
            }
            let agent = slot.as_mut().expect("agent just installed");
            let feats: Vec<TenantFeatures> = windows
                .iter()
                .map(|w| TenantFeatures {
                    tenant: w.tenant,
                    hit_rate: if w.hits + w.misses == 0 {
                        0.0
                    } else {
                        w.hits as f64 / (w.hits + w.misses) as f64
                    },
                    occupancy: if w.budget_bytes == 0 {
                        1.0
                    } else {
                        (w.used_bytes as f64 / w.budget_bytes as f64).min(1.0)
                    },
                    ops: w.ops,
                })
                .collect();
            agent.observe(&feats)
        };
        self.set_tenant_shares(&shares);
        shares
    }

    /// Per-tenant statistics (share, budget, residency, hit counters),
    /// in tenant-id order.
    pub fn tenant_reports(&self) -> Vec<TenantStatsReport> {
        self.all_partitions()
            .iter()
            .map(|p| {
                let (hits, misses) = p.hit_counters();
                TenantStatsReport {
                    tenant: p.tenant(),
                    share: p.share(),
                    budget_bytes: p.budget() as u64,
                    used_bytes: p.used_bytes() as u64,
                    hits,
                    misses,
                    ops: p.ops(),
                }
            })
            .collect()
    }

    /// Point lookup along the paper's query-handling path (default
    /// tenant).
    pub fn get(&self, key: &[u8]) -> Result<Option<Value>> {
        self.get_in(&self.default_partition, key)
    }

    /// [`get`](Self::get) served from `tenant`'s cache partition.
    pub fn get_for(&self, tenant: TenantId, key: &[u8]) -> Result<Option<Value>> {
        self.get_in(&self.partition_for(tenant), key)
    }

    fn get_in(&self, part: &Partition, key: &[u8]) -> Result<Option<Value>> {
        self.counters.add_point();
        part.note_op();
        if let Some(answer) = self.probe_point_caches(part, key) {
            part.note_hit();
            return Ok(answer);
        }
        part.note_miss();
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        let result = match &part.block_cache {
            Some(bc) => self.db.get(key, &bc.provider()),
            None => self.db.get(key, &DirectProvider),
        };
        // Graceful degradation: a failed read is charged as a miss (the
        // controller must see a failing device as expensive, not as a
        // quiet window) and the error propagates to the caller.
        let result = match result {
            Ok(r) => r,
            Err(e) => {
                self.counters.add_failed_read();
                return Err(e);
            }
        };
        if let Some(v) = &result {
            self.fill_point_caches(part, key, v);
        }
        Ok(result)
    }

    /// Batched point lookup: probes the caches per key, then reads all
    /// misses from the LSM-tree in **one** grouped call
    /// ([`StripedDb::multi_get`]) that takes each stripe's read lock once
    /// per group instead of once per key. Results are positional:
    /// `out[i]` answers `keys[i]`. Counter and admission semantics per
    /// key match [`get`](Self::get); a failed grouped read is charged as
    /// one failed read and fails the whole batch.
    pub fn multi_get(&self, keys: &[&[u8]]) -> Result<Vec<Option<Value>>> {
        self.multi_get_in(&self.default_partition, keys)
    }

    /// [`multi_get`](Self::multi_get) served from `tenant`'s partition.
    pub fn multi_get_for(&self, tenant: TenantId, keys: &[&[u8]]) -> Result<Vec<Option<Value>>> {
        self.multi_get_in(&self.partition_for(tenant), keys)
    }

    fn multi_get_in(&self, part: &Partition, keys: &[&[u8]]) -> Result<Vec<Option<Value>>> {
        let mut out: Vec<Option<Value>> = vec![None; keys.len()];
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            self.counters.add_point();
            part.note_op();
            match self.probe_point_caches(part, key) {
                Some(answer) => {
                    part.note_hit();
                    out[i] = answer;
                }
                None => {
                    part.note_miss();
                    miss_idx.push(i);
                }
            }
        }
        if miss_idx.is_empty() {
            return Ok(out);
        }
        self.counters
            .cache_misses
            .fetch_add(miss_idx.len() as u64, Ordering::Relaxed);
        let miss_keys: Vec<&[u8]> = miss_idx.iter().map(|&i| keys[i]).collect();
        let result = match &part.block_cache {
            Some(bc) => self.db.multi_get(&miss_keys, &bc.provider()),
            None => self.db.multi_get(&miss_keys, &DirectProvider),
        };
        let values = match result {
            Ok(v) => v,
            Err(e) => {
                self.counters.add_failed_read();
                return Err(e);
            }
        };
        for (&i, value) in miss_idx.iter().zip(values) {
            if let Some(v) = &value {
                self.fill_point_caches(part, keys[i], v);
            }
            out[i] = value;
        }
        Ok(out)
    }

    /// Probes the partition's range and KV caches for `key`.
    /// `Some(answer)` is a hit (including a negative hit: `Some(None)`);
    /// `None` means both caches missed and the LSM-tree must be read.
    fn probe_point_caches(&self, part: &Partition, key: &[u8]) -> Option<Option<Value>> {
        if let Some(rc) = &part.range_cache {
            match rc.get_point(key) {
                PointLookup::Hit(v) => {
                    self.counters.range_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(Some(v));
                }
                PointLookup::NegativeHit => {
                    self.counters.range_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(None);
                }
                PointLookup::Miss => {}
            }
        }
        if let Some(kv) = &part.kv_cache {
            if let Some(v) = kv.get(key) {
                self.counters.kv_hits.fetch_add(1, Ordering::Relaxed);
                return Some(Some(v));
            }
        }
        None
    }

    /// The cache-fill path for a point read that reached the LSM-tree and
    /// found a value: point admission gates the range cache, the KV cache
    /// admits unconditionally.
    fn fill_point_caches(&self, part: &Partition, key: &[u8], v: &Value) {
        if let Some(rc) = &part.range_cache {
            let (admit, reason) = match &part.point_admission {
                Some(adm) => {
                    let admit = adm.lock().admit(key);
                    let reason = if admit {
                        AdmissionReason::FrequencyAtThreshold
                    } else {
                        AdmissionReason::FrequencyBelowThreshold
                    };
                    (admit, reason)
                }
                None => (true, AdmissionReason::Unconditional),
            };
            if let Some(h) = self.obs.get() {
                let outcome = if admit {
                    AdmissionOutcome::Accept
                } else {
                    AdmissionOutcome::Reject
                };
                h.admission(CacheStructure::Range, outcome, reason, 1, admit as u64);
            }
            if admit {
                rc.insert_point(Bytes::copy_from_slice(key), v.clone());
            }
        }
        if let Some(kv) = &part.kv_cache {
            if let Some(h) = self.obs.get() {
                h.admission(
                    CacheStructure::Kv,
                    AdmissionOutcome::Accept,
                    AdmissionReason::Unconditional,
                    1,
                    1,
                );
            }
            kv.insert(Bytes::copy_from_slice(key), v.clone());
        }
        part.publish_bytes();
    }

    /// Range scan along the query-handling path.
    ///
    /// The range cache serves whatever covered prefix it holds; the tail is
    /// read from the LSM-tree starting exactly at the coverage end (a
    /// partial hit still pays the seek, per the paper, but the prefix's
    /// data blocks are saved). The fill path applies partial admission to
    /// the freshly-read tail, so repeated overlapping scans grow coverage
    /// incrementally — "overlapping scans naturally accelerate this
    /// process" (Section 3.4).
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<(Key, Value)>> {
        self.scan_in(&self.default_partition, from, limit)
    }

    /// [`scan`](Self::scan) served from `tenant`'s cache partition.
    pub fn scan_for(
        &self,
        tenant: TenantId,
        from: &[u8],
        limit: usize,
    ) -> Result<Vec<(Key, Value)>> {
        self.scan_in(&self.partition_for(tenant), from, limit)
    }

    fn scan_in(&self, part: &Partition, from: &[u8], limit: usize) -> Result<Vec<(Key, Value)>> {
        self.counters.add_scan(limit);
        part.note_op();
        // Range-cache prefix (or all-or-nothing under the ablation flag).
        let (mut results, continuation) = match &part.range_cache {
            Some(rc) if self.serve_partial_range => rc.get_range_partial(from, limit),
            Some(rc) => match rc.get_range(from, limit) {
                adcache_cache::RangeLookup::Hit(res) => (res, None),
                adcache_cache::RangeLookup::Miss => {
                    (Vec::new(), Some(Bytes::copy_from_slice(from)))
                }
            },
            None => (Vec::new(), Some(Bytes::copy_from_slice(from))),
        };
        let Some(cont_key) = continuation else {
            self.counters.range_hits.fetch_add(1, Ordering::Relaxed);
            part.note_hit();
            self.counters
                .entries_returned
                .fetch_add(results.len() as u64, Ordering::Relaxed);
            return Ok(results);
        };
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        part.note_miss();
        let remaining = limit - results.len();
        let admission = *self.scan_admission.read();
        let tail = match &part.block_cache {
            Some(bc) => {
                // AdCache also applies partial admission at block
                // granularity (Section 3.4 closing note): misses beyond the
                // budget are read but not admitted.
                let provider = if self.strategy == Strategy::AdCache {
                    let b = self.b_estimate.read().max(1.0);
                    let admitted_entries = admission.admitted_len(remaining);
                    let seek_blocks = self.db.num_runs().max(1);
                    let budget = (admitted_entries as f64 / b).ceil() as usize + seek_blocks;
                    bc.provider_with_budget(budget)
                } else {
                    bc.provider()
                };
                self.db.scan(&cont_key, remaining, &provider)
            }
            None => self.db.scan(&cont_key, remaining, &DirectProvider),
        };
        let tail = match tail {
            Ok(t) => t,
            Err(e) => {
                self.counters.add_failed_read();
                return Err(e);
            }
        };
        if let Some(rc) = &part.range_cache {
            let admitted = if self.strategy == Strategy::AdCache {
                admission.admitted_len(tail.len())
            } else {
                tail.len()
            };
            if let Some(h) = self.obs.get() {
                if !tail.is_empty() {
                    let (outcome, reason) = if self.strategy != Strategy::AdCache {
                        (AdmissionOutcome::Accept, AdmissionReason::Unconditional)
                    } else if admitted == 0 {
                        (AdmissionOutcome::Reject, AdmissionReason::ScanZeroLength)
                    } else if admitted >= tail.len() {
                        (
                            AdmissionOutcome::Accept,
                            AdmissionReason::ScanWithinFullLimit,
                        )
                    } else {
                        (AdmissionOutcome::Partial, AdmissionReason::ScanPartialSlope)
                    };
                    h.admission(
                        CacheStructure::Range,
                        outcome,
                        reason,
                        tail.len() as u64,
                        admitted.min(tail.len()) as u64,
                    );
                }
            }
            rc.insert_scan(&cont_key, &tail, admitted);
            part.publish_bytes();
        }
        results.extend(tail);
        self.counters
            .entries_returned
            .fetch_add(results.len() as u64, Ordering::Relaxed);
        Ok(results)
    }

    /// Propagates a write to every partition's result caches: tenants
    /// share one keyspace, so coherence is key-targeted and global, while
    /// capacity pressure stays per-partition.
    fn on_write_all(&self, key: &[u8], value: Option<&Value>) {
        for part in self.all_partitions() {
            if let Some(kv) = &part.kv_cache {
                kv.on_write(key, value);
            }
            if let Some(rc) = &part.range_cache {
                rc.on_write(key, value);
            }
        }
    }

    /// Write-through: the engine plus every result cache stay consistent.
    pub fn put(&self, key: Key, value: Value) -> Result<()> {
        self.counters.add_write();
        self.db.put(key.clone(), value.clone())?;
        self.on_write_all(&key, Some(&value));
        Ok(())
    }

    /// [`put`](Self::put) with the operation charged to `tenant`'s
    /// demand accounting (the write path itself is shared).
    pub fn put_for(&self, tenant: TenantId, key: Key, value: Value) -> Result<()> {
        self.partition_for(tenant).note_op();
        self.put(key, value)
    }

    /// Applies a batch of puts atomically per stripe (see
    /// [`StripedDb::write_batch`]), keeping every result cache
    /// write-through consistent.
    pub fn write_batch(&self, batch: Vec<(Key, Value)>) -> Result<()> {
        let entries: Vec<(Key, adcache_lsm::Entry)> = batch
            .iter()
            .map(|(k, v)| (k.clone(), adcache_lsm::Entry::Put(v.clone())))
            .collect();
        self.db.write_batch(entries)?;
        for (key, value) in &batch {
            self.counters.add_write();
            self.on_write_all(key, Some(value));
        }
        Ok(())
    }

    /// Deletes a key, invalidating result-cache entries.
    pub fn delete(&self, key: Key) -> Result<()> {
        self.counters.add_write();
        self.db.delete(key.clone())?;
        self.on_write_all(&key, None);
        Ok(())
    }

    /// [`delete`](Self::delete) with the operation charged to `tenant`'s
    /// demand accounting.
    pub fn delete_for(&self, tenant: TenantId, key: Key) -> Result<()> {
        self.partition_for(tenant).note_op();
        self.delete(key)
    }

    /// Loads a key during the populate phase without counting it as a
    /// measured operation and without touching the caches.
    pub fn load(&self, key: Key, value: Value) -> Result<()> {
        self.db.put(key, value)
    }

    /// Applies a controller decision: moves the memory boundary and retunes
    /// the admission parameters (AdCache only; no-op otherwise).
    pub fn apply_decision(&self, d: &CacheDecision) {
        if self.strategy != Strategy::AdCache {
            return;
        }
        // Boundary hysteresis: tiny exploratory wiggles would evict for
        // nothing, so only real moves (or moves to the extremes) resize.
        let hyst = self.ratio_hysteresis;
        let mut applied = self.applied_ratio.write();
        let snapped = if d.range_ratio < hyst {
            0.0
        } else if d.range_ratio > 1.0 - hyst {
            1.0
        } else {
            d.range_ratio
        };
        let moved = (snapped - *applied).abs() >= hyst
            || (snapped != *applied && (snapped == 0.0 || snapped == 1.0));
        let range_bytes = (self.total_cache_bytes as f64 * snapped) as usize;
        let block_bytes = self.total_cache_bytes - range_bytes;
        if moved {
            *applied = snapped;
            // Every partition moves its own block/range boundary to the
            // snapped ratio at its own budget: the controller learns one
            // global boundary, tenants keep isolated capacity.
            for part in self.all_partitions() {
                part.resize(part.budget(), snapped);
            }
        }
        drop(applied);
        if let Some(h) = self.obs.get() {
            if moved {
                h.boundary_resizes.inc();
                h.boundary_block_bytes.set(block_bytes as i64);
                h.boundary_range_bytes.set(range_bytes as i64);
            }
            h.obs.emit(|| Event::BoundaryResize {
                block_bytes: block_bytes as u64,
                range_bytes: range_bytes as u64,
                range_ratio: snapped,
                applied: moved,
            });
        }
        for part in self.all_partitions() {
            part.apply_admission(d);
        }
        *self.scan_admission.write() = ScanAdmission::new(d.scan_a, d.scan_b);
        self.refresh_shape();
    }

    /// Empties every cache (capacities are preserved). Used between
    /// back-to-back controlled experiments on a shared engine so one
    /// candidate's warm state cannot bias the next.
    pub fn clear_caches(&self) {
        for part in self.all_partitions() {
            part.clear();
        }
    }

    /// Refreshes the cached entries-per-block estimate from the live tree.
    pub fn refresh_shape(&self) {
        let (entries, blocks) = self.db.entries_and_blocks();
        if blocks > 0 {
            *self.b_estimate.write() = entries as f64 / blocks as f64;
        }
    }

    /// A full counter snapshot (window boundaries).
    pub fn snapshot(&self) -> Snapshot {
        let c = &self.counters;
        // Block-cache hit/miss totals aggregate over every tenant
        // partition so controller rewards see global pressure.
        let mut bstats = adcache_cache::CacheStats::default();
        for part in self.all_partitions() {
            if let Some(b) = &part.block_cache {
                let s = b.stats();
                bstats.hits += s.hits;
                bstats.misses += s.misses;
            }
        }
        Snapshot {
            points: c.points.load(Ordering::Relaxed),
            scans: c.scans.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            scan_len_sum: c.scan_len_sum.load(Ordering::Relaxed),
            range_hits: c.range_hits.load(Ordering::Relaxed),
            kv_hits: c.kv_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            query_block_reads: self.db.query_block_reads().saturating_sub(
                self.prefetcher
                    .as_ref()
                    .map_or(0, |p| p.blocks_prefetched()),
            ),
            block_cache_hits: bstats.hits,
            block_cache_misses: bstats.misses,
            compactions: self.db.compactions(),
            simulated_ns: self.db.storage().stats().simulated_ns(),
            failed_reads: c.failed_reads.load(Ordering::Relaxed),
        }
    }

    /// Builds the controller's observation for the window `start..now`,
    /// filling in tree shape and cache occupancy.
    pub fn window_summary(&self, start: &Snapshot) -> WindowSummary {
        let end = self.snapshot();
        let mut w = WindowSummary::from_snapshots(start, &end);
        self.refresh_shape();
        w.entries_per_block = *self.b_estimate.read();
        w.levels = self.db.num_levels().max(1);
        w.runs = self.db.num_runs();
        w.r0_max = self.db.options().l0_stop_files;
        let (mut block_used, mut block_cap) = (0usize, 0usize);
        let (mut range_used, mut range_cap) = (0usize, 0usize);
        for part in self.all_partitions() {
            if let Some(b) = &part.block_cache {
                block_used += b.used();
                block_cap += b.capacity();
            }
            if let Some(r) = &part.range_cache {
                range_used += r.used();
                range_cap += r.capacity();
            }
        }
        w.block_occupancy = if block_cap == 0 {
            0.0
        } else {
            block_used as f64 / block_cap as f64
        };
        let dataset: u64 = self.db.level_summary().iter().map(|(_, _, b)| b).sum();
        w.cache_fraction = if dataset == 0 {
            0.0
        } else {
            (self.total_cache_bytes as f64 / dataset as f64).min(2.0)
        };
        w.range_occupancy = if range_cap == 0 {
            0.0
        } else {
            range_used as f64 / range_cap as f64
        };
        w
    }

    /// Total cache memory budget.
    pub fn total_cache_bytes(&self) -> usize {
        self.total_cache_bytes
    }

    /// The engine configuration this instance was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// A serializable point-in-time statistics report covering the engine,
    /// every cache structure, and the tree shape — the payload behind the
    /// server's `STATS` opcode and the CLI `stats` command.
    pub fn stats_report(&self) -> EngineStatsReport {
        let snap = self.snapshot();
        // The wire-stable `block_cache`/`range_cache` fields keep their
        // pre-tenant meaning: the default partition's caches. Per-tenant
        // breakdown rides in the appended `tenants` list.
        let (block, range) = (
            self.default_partition.block_cache.as_deref().map(|bc| {
                let s = bc.stats();
                CacheStatsReport {
                    used_bytes: bc.used() as u64,
                    capacity_bytes: bc.capacity() as u64,
                    entries: bc.len() as u64,
                    hits: s.hits,
                    misses: s.misses,
                }
            }),
            self.default_partition.range_cache.as_ref().map(|rc| {
                let s = rc.stats();
                CacheStatsReport {
                    used_bytes: rc.used() as u64,
                    capacity_bytes: rc.capacity() as u64,
                    entries: rc.len() as u64,
                    hits: s.hits,
                    misses: s.misses,
                }
            }),
        );
        EngineStatsReport {
            strategy: self.strategy.name().into(),
            total_cache_bytes: self.total_cache_bytes as u64,
            points: snap.points,
            scans: snap.scans,
            writes: snap.writes,
            range_hits: snap.range_hits,
            kv_hits: snap.kv_hits,
            cache_misses: snap.cache_misses,
            failed_reads: snap.failed_reads,
            query_block_reads: snap.query_block_reads,
            compactions: snap.compactions,
            flushes: self
                .db
                .stats_sum(|s| s.flushes.load(std::sync::atomic::Ordering::Relaxed)),
            runs: self.db.num_runs() as u64,
            levels: self.db.num_levels() as u64,
            block_cache: block,
            range_cache: range,
            stripes: self.db.num_stripes() as u64,
            group_commit_rounds: self.db.group_commit().0,
            group_commit_batches: self.db.group_commit().1,
            seals: self.db.stats_sum(|s| s.seals()),
            write_stalls: self.db.stats_sum(|s| s.write_stalls()),
            tenants: self.tenant_reports(),
        }
    }
}

/// One cache structure's slice of an [`EngineStatsReport`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStatsReport {
    /// Bytes currently held.
    pub used_bytes: u64,
    /// Configured byte budget.
    pub capacity_bytes: u64,
    /// Entries (blocks or KV pairs) currently held.
    pub entries: u64,
    /// Lookup hits since construction.
    pub hits: u64,
    /// Lookup misses since construction.
    pub misses: u64,
}

/// One tenant partition's slice of an [`EngineStatsReport`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantStatsReport {
    /// Tenant id (`0` is the default tenant).
    pub tenant: u32,
    /// Arbitrated share of the total cache budget, in `[0, 1]`.
    pub share: f64,
    /// Byte budget the share currently maps to.
    pub budget_bytes: u64,
    /// Bytes resident across the tenant's caches.
    pub used_bytes: u64,
    /// Result-cache hits since construction.
    pub hits: u64,
    /// Result-cache misses since construction.
    pub misses: u64,
    /// Operations the tenant has issued.
    pub ops: u64,
}

/// A serializable engine statistics snapshot (see
/// [`CachedDb::stats_report`]). Field names are part of the server's
/// `STATS` wire payload, so renames are breaking changes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineStatsReport {
    /// Strategy name as reported by [`Strategy::name`].
    pub strategy: String,
    /// Total cache budget in bytes.
    pub total_cache_bytes: u64,
    /// Point lookups served.
    pub points: u64,
    /// Scans served.
    pub scans: u64,
    /// Writes (puts + deletes) applied.
    pub writes: u64,
    /// Queries answered by the range cache.
    pub range_hits: u64,
    /// Queries answered by the KV cache.
    pub kv_hits: u64,
    /// Queries that fell through to the LSM-tree.
    pub cache_misses: u64,
    /// Reads that failed at the storage layer.
    pub failed_reads: u64,
    /// Query-path SST block reads.
    pub query_block_reads: u64,
    /// Compactions completed.
    pub compactions: u64,
    /// Memtable flushes completed.
    pub flushes: u64,
    /// Current sorted-run count.
    pub runs: u64,
    /// Current non-empty level count.
    pub levels: u64,
    /// Block-cache stats, when the strategy has one.
    pub block_cache: Option<CacheStatsReport>,
    /// Range-cache stats, when the strategy has one.
    pub range_cache: Option<CacheStatsReport>,
    /// Keyspace stripes the engine is sharded into (1 = classic).
    pub stripes: u64,
    /// Group-commit leader rounds across stripes (each is one WAL push +
    /// at most one fsync).
    pub group_commit_rounds: u64,
    /// Write batches committed through group commit; divided by the round
    /// count this is the mean group size.
    pub group_commit_batches: u64,
    /// Memtables sealed for background flushes.
    pub seals: u64,
    /// Writes stalled on their own stripe's backpressure.
    pub write_stalls: u64,
    /// Per-tenant partition breakdown, in tenant-id order (the default
    /// tenant `0` first). A single-tenant engine reports one entry.
    pub tenants: Vec<TenantStatsReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcache_lsm::MemStorage;
    use adcache_workload::render_key;

    fn build(strategy: Strategy, cache_bytes: usize) -> CachedDb {
        let storage = Arc::new(MemStorage::new());
        CachedDb::new(
            Options::small(),
            storage,
            EngineConfig::new(strategy, cache_bytes),
        )
        .unwrap()
    }

    fn populate(db: &CachedDb, n: u64) {
        for i in 0..n {
            db.load(render_key(i), Bytes::from(format!("value-{i:04}")))
                .unwrap();
        }
        db.db().flush().unwrap();
        while db.db().maybe_compact_once().unwrap() {}
    }

    /// Every strategy must return identical query results.
    #[test]
    fn all_strategies_agree_on_results() {
        let mut engines: Vec<CachedDb> = Strategy::all()
            .iter()
            .map(|s| build(*s, 64 << 10))
            .collect();
        for e in &engines {
            populate(e, 2000);
        }
        // Mixed reads/writes, repeated so caches warm up and must stay
        // coherent with a ground-truth model.
        let mut model: std::collections::BTreeMap<u64, String> =
            (0..2000).map(|i| (i, format!("value-{i:04}"))).collect();
        for round in 0..3 {
            for i in (0..2000).step_by(7) {
                let expected = &model[&i];
                for e in &engines {
                    let got = e.get(&render_key(i)).unwrap().unwrap();
                    assert_eq!(
                        got.as_ref(),
                        expected.as_bytes(),
                        "round {round} strategy {:?}",
                        e.strategy()
                    );
                }
            }
            for i in (0..2000).step_by(13) {
                let scans: Vec<Vec<(Key, Value)>> = engines
                    .iter()
                    .map(|e| e.scan(&render_key(i), 16).unwrap())
                    .collect();
                for s in &scans[1..] {
                    assert_eq!(s, &scans[0], "scan divergence at {i}");
                }
            }
            // Overwrite some keys; all caches must stay fresh.
            for i in (0..2000).step_by(11) {
                model.insert(i, format!("v{round}-{i}"));
            }
            for e in &mut engines {
                for i in (0..2000).step_by(11) {
                    e.put(render_key(i), Bytes::from(format!("v{round}-{i}")))
                        .unwrap();
                }
            }
            for i in (0..2000).step_by(11) {
                for e in &engines {
                    let got = e.get(&render_key(i)).unwrap().unwrap();
                    assert_eq!(got.as_ref(), format!("v{round}-{i}").as_bytes());
                }
            }
        }
    }

    #[test]
    fn deletes_are_coherent_across_caches() {
        for s in Strategy::all() {
            let db = build(s, 64 << 10);
            populate(&db, 500);
            // Warm caches.
            for i in 0..500 {
                db.get(&render_key(i)).unwrap();
            }
            db.scan(&render_key(100), 32).unwrap();
            for i in (0..500).step_by(3) {
                db.delete(render_key(i)).unwrap();
            }
            for i in 0..500 {
                let got = db.get(&render_key(i)).unwrap();
                if i % 3 == 0 {
                    assert!(got.is_none(), "{s:?}: deleted key {i} resurfaced");
                } else {
                    assert!(got.is_some(), "{s:?}: key {i} lost");
                }
            }
            let scan = db.scan(&render_key(99), 10).unwrap();
            for (k, _) in scan {
                let id = adcache_workload::parse_key(&k).unwrap();
                assert!(!id.is_multiple_of(3), "{s:?}: deleted key {id} in scan");
            }
        }
    }

    #[test]
    fn block_cache_reduces_repeat_io() {
        let db = build(Strategy::RocksDbBlock, 1 << 20);
        populate(&db, 2000);
        db.get(&render_key(42)).unwrap();
        let after_first = db.db().query_block_reads();
        assert!(after_first > 0);
        db.get(&render_key(42)).unwrap();
        assert_eq!(
            db.db().query_block_reads(),
            after_first,
            "second get must be free"
        );
    }

    #[test]
    fn range_cache_strategy_serves_repeat_scans_without_io() {
        let db = build(Strategy::RangeCache, 1 << 20);
        populate(&db, 2000);
        db.scan(&render_key(100), 16).unwrap();
        let reads = db.db().query_block_reads();
        db.scan(&render_key(100), 16).unwrap();
        assert_eq!(
            db.db().query_block_reads(),
            reads,
            "repeat scan must hit the range cache"
        );
        // And a sub-range too.
        db.scan(&render_key(105), 8).unwrap();
        assert_eq!(db.db().query_block_reads(), reads);
    }

    #[test]
    fn kv_cache_serves_points_but_not_scans() {
        let db = build(Strategy::KvCache, 1 << 20);
        populate(&db, 1000);
        db.get(&render_key(5)).unwrap();
        let reads = db.db().query_block_reads();
        db.get(&render_key(5)).unwrap();
        assert_eq!(db.db().query_block_reads(), reads);
        db.scan(&render_key(5), 4).unwrap();
        let reads2 = db.db().query_block_reads();
        db.scan(&render_key(5), 4).unwrap();
        assert!(
            db.db().query_block_reads() > reads2,
            "scans bypass the KV cache"
        );
    }

    #[test]
    fn adcache_decision_moves_the_boundary() {
        let db = build(Strategy::AdCache, 1 << 20);
        populate(&db, 1000);
        let d = CacheDecision {
            range_ratio: 0.0,
            point_threshold: 0.001,
            scan_a: 8,
            scan_b: 0.5,
        };
        db.apply_decision(&d);
        assert_eq!(db.range_cache().unwrap().capacity(), 0);
        assert_eq!(db.block_cache().unwrap().capacity(), 1 << 20);
        let d = CacheDecision {
            range_ratio: 1.0,
            ..d
        };
        db.apply_decision(&d);
        assert_eq!(db.block_cache().unwrap().capacity(), 0);
        // Non-AdCache engines ignore decisions.
        let block_db = build(Strategy::RocksDbBlock, 1 << 20);
        block_db.apply_decision(&d);
        assert_eq!(block_db.block_cache().unwrap().capacity(), 1 << 20);
    }

    #[test]
    fn adcache_partial_admission_limits_range_cache_growth() {
        let db = build(Strategy::AdCache, 1 << 20);
        populate(&db, 4000);
        db.apply_decision(&CacheDecision {
            range_ratio: 1.0,
            point_threshold: 0.0,
            scan_a: 8,
            scan_b: 0.0,
        });
        db.scan(&render_key(0), 64).unwrap();
        // Only the first 8 entries of the long scan may be admitted.
        assert!(
            db.range_cache().unwrap().len() <= 8,
            "len {}",
            db.range_cache().unwrap().len()
        );

        // Compare: plain RangeCache admits all 64.
        let full = build(Strategy::RangeCache, 1 << 20);
        populate(&full, 4000);
        full.scan(&render_key(0), 64).unwrap();
        assert_eq!(full.range_cache().unwrap().len(), 64);
    }

    #[test]
    fn write_batch_keeps_caches_coherent() {
        let db = build(Strategy::AdCache, 1 << 20);
        populate(&db, 500);
        // Warm the caches on a range.
        db.scan(&render_key(100), 32).unwrap();
        // Batch-overwrite part of that range.
        let batch: Vec<(Key, Value)> = (100..120)
            .map(|i| (render_key(i), Bytes::from(format!("batched-{i}"))))
            .collect();
        db.write_batch(batch).unwrap();
        for i in 100..120 {
            assert_eq!(
                db.get(&render_key(i)).unwrap().unwrap().as_ref(),
                format!("batched-{i}").as_bytes()
            );
        }
        let scan = db.scan(&render_key(110), 4).unwrap();
        assert_eq!(scan[0].1.as_ref(), b"batched-110");
    }

    #[test]
    fn window_summary_populates_shape() {
        let db = build(Strategy::AdCache, 1 << 20);
        populate(&db, 3000);
        let start = db.snapshot();
        for i in 0..200 {
            db.get(&render_key(i % 300)).unwrap();
        }
        for i in 0..20 {
            db.scan(&render_key(i * 10), 16).unwrap();
        }
        let w = db.window_summary(&start);
        assert_eq!(w.points, 200);
        assert_eq!(w.scans, 20);
        assert_eq!(w.avg_scan_len, 16.0);
        assert!(w.entries_per_block > 1.0);
        assert!(w.levels >= 1);
        assert!(w.runs >= 1);
        assert_eq!(w.r0_max, 8);
        assert!(w.io_miss > 0);
    }

    #[test]
    fn failed_reads_are_counted_and_do_not_wedge_the_engine() {
        use adcache_lsm::{FaultPlan, FaultStorage};

        let inner = Arc::new(MemStorage::new());
        let faulty = Arc::new(FaultStorage::new(inner, 11, FaultPlan::none()));
        let mut opts = Options::small();
        // Leave no retry headroom so injected errors surface to the engine.
        opts.read_retries = 0;
        let db = CachedDb::new(
            opts,
            faulty.clone(),
            EngineConfig::new(Strategy::AdCache, 64 << 10),
        )
        .unwrap();
        populate(&db, 1000);
        faulty.set_plan(FaultPlan {
            read_transient: 1.0,
            ..FaultPlan::none()
        });
        let start = db.snapshot();
        let mut failures = 0;
        for i in 0..20 {
            if db.get(&render_key(i)).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "an always-failing device must surface errors");
        let w = db.window_summary(&start);
        assert!(
            w.io_miss >= failures,
            "failed reads must be charged as misses (io_miss {}, failures {failures})",
            w.io_miss
        );
        // The storm passes; the same engine serves again.
        faulty.set_plan(FaultPlan::none());
        for i in 0..20 {
            assert!(db.get(&render_key(i)).unwrap().is_some());
        }
    }

    #[test]
    fn compaction_invalidation_keeps_block_cache_coherent() {
        let db = build(Strategy::RocksDbBlock, 4 << 20);
        populate(&db, 2000);
        // Warm the block cache broadly.
        for i in 0..2000 {
            db.get(&render_key(i)).unwrap();
        }
        let cached_before = db.block_cache().unwrap().len();
        assert!(cached_before > 0);
        // Heavy overwrites force flushes + compactions -> invalidations.
        for round in 0..10 {
            for i in 0..2000 {
                db.put(render_key(i), Bytes::from(format!("r{round}-{i}")))
                    .unwrap();
            }
        }
        assert!(db.block_cache().unwrap().stats().invalidations > 0);
        // Every read still returns the latest value.
        for i in (0..2000).step_by(37) {
            let got = db.get(&render_key(i)).unwrap().unwrap();
            assert_eq!(got.as_ref(), format!("r9-{i}").as_bytes());
        }
    }

    #[test]
    fn unregistered_tenants_fall_back_to_the_default_partition() {
        let db = build(Strategy::AdCache, 256 << 10);
        populate(&db, 500);
        // Tenant 42 never registered: its reads behave exactly like
        // legacy single-tenant traffic.
        for i in 0..100 {
            assert!(db.get_for(42, &render_key(i)).unwrap().is_some());
        }
        assert_eq!(db.tenant_ids(), vec![DEFAULT_TENANT]);
        let reports = db.tenant_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].tenant, DEFAULT_TENANT);
        assert!(reports[0].ops >= 100);
        assert!((reports[0].share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tenant_partitions_are_capacity_isolated() {
        let db = build(Strategy::AdCache, 512 << 10);
        populate(&db, 2000);
        db.register_tenant(1);
        db.register_tenant(2);
        // Warm tenant 1 on a disjoint slice of the keyspace.
        for i in 0..200 {
            db.get_for(1, &render_key(i)).unwrap();
            db.scan_for(1, &render_key(i), 8).unwrap();
        }
        let quiet = db.partition_for(1).used_bytes();
        assert!(quiet > 0, "tenant 1 should have resident bytes");
        // A pathological flood from tenant 2 (reads only — no writes, so
        // no cross-partition invalidation) must not evict tenant 1.
        for round in 0..3 {
            for i in 500..2000 {
                db.get_for(2, &render_key(i)).unwrap();
                if i % 7 == 0 {
                    db.scan_for(2, &render_key(i), 16).unwrap();
                }
            }
            let _ = round;
        }
        assert_eq!(
            db.partition_for(1).used_bytes(),
            quiet,
            "tenant 2's read pressure must never evict tenant 1's entries"
        );
    }

    #[test]
    fn rebalance_shifts_share_toward_the_hot_tenant() {
        let db = build(Strategy::AdCache, 256 << 10);
        populate(&db, 2000);
        db.register_tenant(1);
        db.register_tenant(2);
        db.register_tenant(3);
        let total: f64 = db.tenant_reports().iter().map(|r| r.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares must sum to 1: {total}");
        // Tenant 1 hammers a working set far larger than its slice
        // (missing constantly); the others idle on one hot key each.
        // Repeated rebalances should grow tenant 1's share while
        // everyone keeps the guaranteed minimum.
        for _ in 0..30 {
            for i in 0..1500 {
                db.get_for(1, &render_key(i)).unwrap();
            }
            db.get_for(2, &render_key(1900)).unwrap();
            db.get_for(3, &render_key(1901)).unwrap();
            db.rebalance_tenants();
        }
        let reports = db.tenant_reports();
        let share_of = |t: u32| reports.iter().find(|r| r.tenant == t).unwrap().share;
        let min = db.config().min_tenant_share;
        assert!(
            share_of(1) > 0.30,
            "hot tenant should out-earn an equal split, got {}",
            share_of(1)
        );
        for t in [DEFAULT_TENANT, 2, 3] {
            assert!(
                share_of(t) >= min - 1e-9,
                "tenant {t} fell below the guaranteed minimum: {}",
                share_of(t)
            );
        }
        let total: f64 = reports.iter().map(|r| r.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares must sum to 1: {total}");
    }
}
