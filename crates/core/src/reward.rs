//! The I/O-based reward model (paper Section 3.5, Table 1).
//!
//! Result caches have no natural "block hit rate", so AdCache estimates the
//! block I/Os a window *would* have cost with no cache at all:
//!
//! ```text
//! IO_estimate = p·(1 + FPR) + s·l/B + s·(L + r0_max/2 − 1)
//! ```
//!
//! (point lookups read one block each plus bloom false positives; each scan
//! pays `l/B` data blocks plus one seek block per sorted run, with the
//! Level-0 run count modeled as `r0_max/2`). The estimated hit rate is then
//! `h = 1 − IO_miss / IO_estimate`, smoothed exponentially before being
//! turned into the relative-improvement reward `Δh_smoothed / h_smoothed`.

use crate::stats::WindowSummary;

/// Computes `IO_estimate` for a window.
///
/// `fpr` is the Bloom-filter false-positive rate (the paper argues ≈0 at 10
/// bits/key and neglects it).
pub fn io_estimate(
    points: u64,
    scans: u64,
    avg_scan_len: f64,
    entries_per_block: f64,
    levels: usize,
    r0_max: usize,
    fpr: f64,
) -> f64 {
    let b = entries_per_block.max(1.0);
    let point_io = points as f64 * (1.0 + fpr);
    let scan_data_io = scans as f64 * (avg_scan_len / b);
    let scan_seek_io = scans as f64 * (levels as f64 + r0_max as f64 / 2.0 - 1.0).max(1.0);
    point_io + scan_data_io + scan_seek_io
}

/// `IO_estimate` from a [`WindowSummary`].
pub fn io_estimate_of(w: &WindowSummary) -> f64 {
    io_estimate(
        w.points,
        w.scans,
        w.avg_scan_len,
        w.entries_per_block,
        w.levels,
        w.r0_max,
        0.0,
    )
}

/// Estimated hit rate `1 − IO_miss / IO_estimate`, clamped to `[-1, 1]`
/// (slightly negative values can appear when seeks touch more runs than the
/// model assumes).
pub fn h_estimate(w: &WindowSummary) -> f64 {
    let est = io_estimate_of(w);
    if est <= 0.0 {
        return 0.0;
    }
    (1.0 - w.io_miss as f64 / est).clamp(-1.0, 1.0)
}

/// Exponential smoothing of the hit-rate signal plus the relative-change
/// reward (paper Section 3.5, "Reward Calculation").
#[derive(Debug, Clone)]
pub struct RewardSmoother {
    alpha: f64,
    h_smoothed: Option<f64>,
}

impl RewardSmoother {
    /// `alpha` weights history; the paper's default is 0.9.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        RewardSmoother {
            alpha,
            h_smoothed: None,
        }
    }

    /// Feeds one window's `h_estimate`; returns `(h_smoothed, reward)`.
    /// The first observation initializes the smoother with reward 0.
    pub fn update(&mut self, h_est: f64) -> (f64, f64) {
        match self.h_smoothed {
            None => {
                self.h_smoothed = Some(h_est);
                (h_est, 0.0)
            }
            Some(prev) => {
                let new = self.alpha * prev + (1.0 - self.alpha) * h_est;
                self.h_smoothed = Some(new);
                let denom = new.abs().max(1e-3);
                let reward = ((new - prev) / denom).clamp(-1.0, 1.0);
                (new, reward)
            }
        }
    }

    /// The current smoothed hit rate.
    pub fn smoothed(&self) -> Option<f64> {
        self.h_smoothed
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(points: u64, scans: u64, l: f64, io_miss: u64) -> WindowSummary {
        WindowSummary {
            points,
            scans,
            avg_scan_len: l,
            io_miss,
            entries_per_block: 4.0,
            levels: 3,
            r0_max: 8,
            ..Default::default()
        }
    }

    #[test]
    fn io_estimate_matches_paper_formula() {
        // p=100 points: 100 I/Os. s=10 scans of 16 keys at B=4: 40 data
        // blocks + 10*(3 + 8/2 - 1)=60 seek blocks.
        let est = io_estimate(100, 10, 16.0, 4.0, 3, 8, 0.0);
        assert!((est - 200.0).abs() < 1e-9, "est {est}");
        // FPR adds p*fpr.
        let est = io_estimate(100, 0, 0.0, 4.0, 3, 8, 0.01);
        assert!((est - 101.0).abs() < 1e-9);
    }

    #[test]
    fn h_estimate_boundaries() {
        // No misses at all: perfect hit rate.
        assert!((h_estimate(&window(100, 0, 0.0, 0)) - 1.0).abs() < 1e-9);
        // Every estimated I/O missed: zero.
        assert!(h_estimate(&window(100, 0, 0.0, 100)).abs() < 1e-9);
        // Half missed: 0.5.
        assert!((h_estimate(&window(100, 0, 0.0, 50)) - 0.5).abs() < 1e-9);
        // More misses than the estimate clamps at -1, never panics.
        assert!(h_estimate(&window(10, 0, 0.0, 1000)) >= -1.0);
        // Empty window is 0.
        assert_eq!(h_estimate(&window(0, 0, 0.0, 0)), 0.0);
    }

    #[test]
    fn smoothing_damps_fluctuations() {
        let mut s = RewardSmoother::new(0.9);
        let (h0, r0) = s.update(0.8);
        assert_eq!((h0, r0), (0.8, 0.0));
        // A transient dip barely moves the smoothed value.
        let (h1, _) = s.update(0.2);
        assert!((h1 - 0.74).abs() < 1e-9);
        // With alpha=0 the signal passes through unsmoothed.
        let mut raw = RewardSmoother::new(0.0);
        raw.update(0.8);
        let (h, _) = raw.update(0.2);
        assert!((h - 0.2).abs() < 1e-9);
    }

    #[test]
    fn reward_sign_tracks_hit_rate_trend() {
        let mut s = RewardSmoother::new(0.5);
        s.update(0.5);
        let (_, improving) = s.update(0.9);
        assert!(improving > 0.0);
        let mut s = RewardSmoother::new(0.5);
        s.update(0.9);
        let (_, degrading) = s.update(0.1);
        assert!(degrading < 0.0);
    }

    #[test]
    fn reward_is_bounded() {
        let mut s = RewardSmoother::new(0.0);
        s.update(0.001);
        let (_, r) = s.update(1.0);
        assert!(r <= 1.0);
        let (_, r) = s.update(-1.0);
        assert!(r >= -1.0);
    }
}
