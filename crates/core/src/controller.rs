//! The Policy Decision Controller (paper Figure 4, Sections 3.5/4.2).
//!
//! Every `window` operations the controller consumes a [`WindowSummary`],
//! converts it into the reward signal, trains the actor-critic one step,
//! and emits the next [`CacheDecision`]. Decisions are applied for the
//! *following* window — "cache parameter updates are always one window
//! behind the latest observed workload" (Section 4.2).

use crate::reward::{h_estimate, RewardSmoother};
use crate::stats::WindowSummary;
use adcache_obs::{Event, Obs};
use adcache_rl::{ActorCritic, AgentConfig, Transition};

/// Number of state features fed to the agent.
pub const STATE_DIM: usize = 13;
/// Number of control outputs.
pub const ACTION_DIM: usize = 4;

/// The controller's output: cache partitioning plus admission parameters
/// for the next window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheDecision {
    /// Fraction of total cache memory given to the range cache (the rest
    /// goes to the block cache).
    pub range_ratio: f64,
    /// Normalized-importance threshold for point-lookup admission.
    pub point_threshold: f64,
    /// Full-admission scan-length cut-off `a`.
    pub scan_a: usize,
    /// Partial-admission slope `b`.
    pub scan_b: f64,
}

impl Default for CacheDecision {
    fn default() -> Self {
        // Paper defaults: an even split to start, near-zero threshold, and
        // `a` initialized to the short-scan length.
        CacheDecision {
            range_ratio: 0.5,
            point_threshold: 0.0,
            scan_a: 16,
            scan_b: 0.25,
        }
    }
}

impl CacheDecision {
    /// The action vector that would produce this decision — the inverse of
    /// the controller's action mapping, used to build supervised
    /// pretraining targets from controlled experiments (Section 3.6).
    pub fn to_action(&self) -> Vec<f32> {
        vec![
            self.range_ratio as f32,
            (self.point_threshold / 0.01).clamp(0.0, 1.0) as f32,
            (self.scan_a.min(64) as f64 / 64.0) as f32,
            self.scan_b.clamp(0.0, 1.0) as f32,
        ]
    }
}

/// Featurizes a window into the agent's state vector, given the range
/// ratio currently in force. All features are scaled to roughly `[0, 1]`.
pub fn featurize_with(range_ratio: f64, w: &WindowSummary) -> Vec<f32> {
    let ops = w.ops().max(1) as f64;
    let reads = (w.points + w.scans).max(1) as f64;
    vec![
        (w.points as f64 / ops) as f32,
        (w.scans as f64 / ops) as f32,
        (w.writes as f64 / ops) as f32,
        (w.avg_scan_len / 64.0).min(2.0) as f32,
        ((w.range_hits + w.kv_hits) as f64 / reads) as f32,
        w.block_hit_rate as f32,
        h_estimate(w).max(0.0) as f32,
        range_ratio as f32,
        w.block_occupancy as f32,
        w.range_occupancy as f32,
        (w.compactions as f64 / 4.0).min(1.0) as f32,
        (w.runs as f64 / 16.0).min(1.0) as f32,
        (w.cache_fraction / 2.0) as f32,
    ]
}

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Operations per tuning window (paper: 1000).
    pub window: u64,
    /// Reward smoothing factor α (paper: 0.9).
    pub alpha: f64,
    /// Whether adaptive partitioning is active (ablation switch).
    pub enable_partition: bool,
    /// Whether admission control is active (ablation switch).
    pub enable_admission: bool,
    /// Whether online training runs (off = pretrained-only deployment).
    pub online: bool,
    /// Whether the adaptive learning-rate rule is active (ablation).
    pub adaptive_lr: bool,
    /// Hidden width of the agent's networks (paper: 256; simulations may
    /// shrink it for speed without changing behaviour qualitatively).
    pub hidden: usize,
    /// Agent RNG seed.
    pub seed: u64,
    /// Whether the adversarial-window guard is active: a window whose raw
    /// hit estimate collapses implausibly fast below the smoothed signal
    /// gets its reward clamped and the lr/exploration adaptation frozen,
    /// so one poisoned window cannot destabilize the boundary policy.
    pub adversarial_guard: bool,
    /// Raw-vs-smoothed hit-estimate drop that flags a window as
    /// adversarial. Organic shifts move the estimate gradually; a drop
    /// this steep within one window means the telemetry itself is under
    /// attack (scan flood, sketch churn).
    pub guard_h_drop: f64,
    /// Reward magnitude cap applied to adversarial windows.
    pub guard_reward_clamp: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            window: 1000,
            alpha: 0.9,
            enable_partition: true,
            enable_admission: true,
            online: true,
            adaptive_lr: true,
            hidden: 256,
            seed: 0xADCA,
            adversarial_guard: true,
            guard_h_drop: 0.35,
            guard_reward_clamp: 0.25,
        }
    }
}

/// One record of what the controller saw and decided (experiment output).
#[derive(Debug, Clone)]
pub struct TuningRecord {
    /// Raw estimated hit rate for the window.
    pub h_estimate: f64,
    /// Smoothed hit rate.
    pub h_smoothed: f64,
    /// Reward fed to the agent.
    pub reward: f64,
    /// Actor learning rate after adaptation.
    pub actor_lr: f32,
    /// The decision applied to the *next* window.
    pub decision: CacheDecision,
    /// Whether the adversarial-window guard flagged this window.
    pub adversarial: bool,
}

/// The windowed RL tuning loop.
pub struct Controller {
    cfg: ControllerConfig,
    agent: ActorCritic,
    smoother: RewardSmoother,
    last: Option<(Vec<f32>, Vec<f32>)>,
    decision: CacheDecision,
    history: Vec<TuningRecord>,
    base_lr: f32,
    base_std: f32,
    nonfinite_repairs: u64,
    feature_clamps: u64,
    adversarial_windows: u64,
    obs: Obs,
}

impl Controller {
    /// Creates a controller with a freshly initialized agent.
    pub fn new(cfg: ControllerConfig) -> Self {
        let mut agent_cfg = AgentConfig::paper_default(STATE_DIM, ACTION_DIM);
        agent_cfg.hidden = cfg.hidden;
        agent_cfg.seed = cfg.seed;
        agent_cfg.adaptive_lr = cfg.adaptive_lr;
        Self::with_agent(cfg, ActorCritic::new(agent_cfg))
    }

    /// Creates a controller around an existing (e.g. pretrained) agent.
    pub fn with_agent(cfg: ControllerConfig, agent: ActorCritic) -> Self {
        assert_eq!(agent.config().state_dim, STATE_DIM);
        assert_eq!(agent.config().action_dim, ACTION_DIM);
        let smoother = RewardSmoother::new(cfg.alpha);
        let mut agent = agent;
        agent.set_adaptive_lr(cfg.adaptive_lr);
        let base_lr = agent.actor_lr();
        let base_std = agent.exploration_std();
        Controller {
            cfg,
            agent,
            smoother,
            last: None,
            decision: CacheDecision::default(),
            history: Vec::new(),
            base_lr,
            base_std,
            nonfinite_repairs: 0,
            feature_clamps: 0,
            adversarial_windows: 0,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle: every subsequent window journals
    /// its train step and decision.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// The decision currently in force.
    pub fn decision(&self) -> CacheDecision {
        self.decision
    }

    /// Per-window tuning records (Figure 10's time series).
    pub fn history(&self) -> &[TuningRecord] {
        &self.history
    }

    /// The underlying agent (for saving a trained model).
    pub fn agent(&self) -> &ActorCritic {
        &self.agent
    }

    /// Featurizes a window into the agent's state vector. All features are
    /// scaled to roughly `[0, 1]`.
    pub fn featurize(&self, w: &WindowSummary) -> Vec<f32> {
        featurize_with(self.decision.range_ratio, w)
    }

    fn map_action(&self, a: &[f32]) -> CacheDecision {
        // Smooth the boundary: flipping the ratio wholesale evicts both
        // caches, so a per-window EMA turns decisive moves into a short
        // ramp and suppresses oscillation when the policy is ambivalent.
        let smoothed_ratio = 0.5 * self.decision.range_ratio + 0.5 * a[0] as f64;
        let mut d = CacheDecision {
            range_ratio: smoothed_ratio,
            // Threshold range [0, 1%]: one-off keys score ~1/window, so a
            // sub-percent ceiling is the meaningful control band.
            point_threshold: a[1] as f64 * 0.01,
            scan_a: (a[2] as f64 * 64.0).round() as usize,
            scan_b: a[3] as f64,
        };
        if !self.cfg.enable_partition {
            // Ablation: admission only — the memory stays a pure range cache.
            d.range_ratio = 1.0;
        }
        if !self.cfg.enable_admission {
            // Ablation: partitioning only — admit everything.
            d.point_threshold = 0.0;
            d.scan_a = usize::MAX;
            d.scan_b = 1.0;
        }
        d
    }

    /// Non-finite features or rewards repaired (replaced by 0.0) before
    /// reaching the agent. Non-zero means a degraded window (fault storm,
    /// counter anomaly) produced bad telemetry — the controller absorbed it
    /// rather than poisoning the network weights.
    pub fn nonfinite_repairs(&self) -> u64 {
        self.nonfinite_repairs
    }

    /// Feature values clipped back into the sane `[0, 2]` band before
    /// reaching the agent. Like [`nonfinite_repairs`](Self::nonfinite_repairs),
    /// non-zero means the telemetry went out of spec and the controller
    /// bounded the damage.
    pub fn feature_clamps(&self) -> u64 {
        self.feature_clamps
    }

    /// Windows the adversarial guard flagged (reward clamped, adaptation
    /// frozen).
    pub fn adversarial_windows(&self) -> u64 {
        self.adversarial_windows
    }

    /// Replaces any NaN/Inf element with 0.0 and clips the rest into the
    /// `[0, 2]` band every feature is scaled to, counting repairs. The
    /// clip means a counter blown out by hostile traffic saturates a
    /// feature instead of dominating the network's input scale.
    fn sanitize(&mut self, v: &mut [f32]) {
        for x in v.iter_mut() {
            if !x.is_finite() {
                *x = 0.0;
                self.nonfinite_repairs += 1;
            } else if !(0.0..=2.0).contains(x) {
                *x = x.clamp(0.0, 2.0);
                self.feature_clamps += 1;
            }
        }
    }

    /// Consumes a finished window; trains; returns the decision for the
    /// next window.
    pub fn end_of_window(&mut self, w: &WindowSummary) -> CacheDecision {
        let mut h = h_estimate(w);
        if !h.is_finite() {
            h = 0.0;
            self.nonfinite_repairs += 1;
        }
        // The guard compares the raw estimate against the *previous*
        // smoothed signal: a collapse steeper than any organic workload
        // shift marks the window adversarial before it can train.
        let prev_smoothed = self.smoother.smoothed();
        let (h_smoothed, mut reward) = self.smoother.update(h);
        if !reward.is_finite() {
            reward = 0.0;
            self.nonfinite_repairs += 1;
        }
        let adversarial = self.cfg.adversarial_guard
            && prev_smoothed.is_some_and(|prev| prev - h > self.cfg.guard_h_drop);
        if adversarial {
            let raw_reward = reward;
            let cap = self.cfg.guard_reward_clamp.abs();
            reward = reward.clamp(-cap, cap);
            self.adversarial_windows += 1;
            self.obs.counter("core.adversarial_windows").inc();
            self.obs.emit(|| Event::AdversaryDetected {
                source: "controller".into(),
                h_estimate: h,
                h_smoothed,
                raw_reward,
                clamped_reward: reward,
            });
        }
        let mut next_state = self.featurize(w);
        self.sanitize(&mut next_state);

        if self.cfg.online {
            if let Some((state, action)) = self.last.take() {
                let td_error = self.agent.update(&Transition {
                    state,
                    action: action.clone(),
                    reward: reward as f32,
                    next_state: next_state.clone(),
                });
                self.obs.emit(|| Event::TrainStep {
                    reward,
                    td_error: td_error as f64,
                    actor_lr: self.agent.actor_lr() as f64,
                    action,
                });
            }
            if !adversarial {
                self.agent.adapt_lr(reward as f32);
                // Couple exploration to the adaptive learning rate: a
                // workload shift (negative reward) raises lr and widens
                // exploration; a stable workload narrows it, avoiding
                // boundary jitter that would cause gratuitous evictions.
                // Adversarial windows skip both — raising lr and widening
                // exploration on poisoned feedback is exactly how an
                // attacker would steer the boundary.
                let lr_scale = (self.agent.actor_lr() / self.base_lr).clamp(0.2, 2.0);
                self.agent.set_exploration_std(self.base_std * lr_scale);
            }
        }

        let action = if self.cfg.online {
            self.agent.act(&next_state)
        } else {
            self.agent.act_greedy(&next_state)
        };
        self.decision = self.map_action(&action);
        {
            let d = self.decision;
            let exploratory = self.cfg.online;
            self.obs.emit(|| Event::ControllerDecision {
                range_ratio: d.range_ratio,
                point_threshold: d.point_threshold,
                scan_a: d.scan_a as u64,
                scan_b: d.scan_b,
                exploratory,
            });
        }
        self.last = Some((next_state, action));
        self.history.push(TuningRecord {
            h_estimate: h,
            h_smoothed,
            reward,
            actor_lr: self.agent.actor_lr(),
            decision: self.decision,
            adversarial,
        });
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(points: u64, scans: u64, writes: u64, io_miss: u64) -> WindowSummary {
        WindowSummary {
            points,
            scans,
            writes,
            avg_scan_len: if scans > 0 { 16.0 } else { 0.0 },
            io_miss,
            entries_per_block: 4.0,
            levels: 3,
            r0_max: 8,
            runs: 5,
            ..Default::default()
        }
    }

    fn small_cfg() -> ControllerConfig {
        ControllerConfig {
            hidden: 16,
            ..Default::default()
        }
    }

    #[test]
    fn decisions_are_always_in_range() {
        let mut c = Controller::new(small_cfg());
        for i in 0..50 {
            let d = c.end_of_window(&window(500 + i, 300, 200, 400));
            assert!((0.0..=1.0).contains(&d.range_ratio));
            assert!((0.0..=0.01).contains(&d.point_threshold));
            assert!(d.scan_a <= 64);
            assert!((0.0..=1.0).contains(&d.scan_b));
        }
        assert_eq!(c.history().len(), 50);
    }

    #[test]
    fn featurization_is_bounded_and_dimensioned() {
        let c = Controller::new(small_cfg());
        let f = c.featurize(&window(900, 50, 50, 100));
        assert_eq!(f.len(), STATE_DIM);
        for (i, v) in f.iter().enumerate() {
            assert!((-0.01..=2.01).contains(v), "feature {i} = {v}");
        }
        // Empty window must not divide by zero.
        let f = c.featurize(&WindowSummary::default());
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ablation_flags_pin_parameters() {
        let mut cfg = small_cfg();
        cfg.enable_partition = false;
        let mut c = Controller::new(cfg);
        let d = c.end_of_window(&window(100, 100, 100, 50));
        assert_eq!(
            d.range_ratio, 1.0,
            "admission-only keeps a pure range cache"
        );

        let mut cfg = small_cfg();
        cfg.enable_admission = false;
        let mut c = Controller::new(cfg);
        let d = c.end_of_window(&window(100, 100, 100, 50));
        assert_eq!(d.point_threshold, 0.0);
        assert_eq!(d.scan_a, usize::MAX);
        assert_eq!(d.scan_b, 1.0);
        assert!(d.range_ratio <= 1.0, "partitioning still free to move");
    }

    #[test]
    fn offline_mode_does_not_train() {
        let mut cfg = small_cfg();
        cfg.online = false;
        let mut c = Controller::new(cfg);
        for _ in 0..10 {
            c.end_of_window(&window(500, 300, 200, 400));
        }
        assert_eq!(c.agent().updates(), 0);
        // Greedy decisions converge: the boundary EMA halves the distance
        // to the policy mean each window, all other outputs are exact.
        let d1 = c.end_of_window(&window(500, 300, 200, 400));
        let d2 = c.end_of_window(&window(500, 300, 200, 400));
        let d3 = c.end_of_window(&window(500, 300, 200, 400));
        // The evolving ratio feature perturbs the other outputs slightly.
        assert!((d1.point_threshold - d2.point_threshold).abs() < 1e-4);
        assert!(d1.scan_a.abs_diff(d2.scan_a) <= 1);
        assert!(
            (d3.range_ratio - d2.range_ratio).abs()
                <= (d2.range_ratio - d1.range_ratio).abs() + 1e-9,
            "ratio must converge: {} {} {}",
            d1.range_ratio,
            d2.range_ratio,
            d3.range_ratio
        );
    }

    #[test]
    fn online_mode_trains_once_per_window_after_first() {
        let mut c = Controller::new(small_cfg());
        c.end_of_window(&window(500, 300, 200, 400));
        assert_eq!(c.agent().updates(), 0, "first window has no transition yet");
        c.end_of_window(&window(500, 300, 200, 400));
        assert_eq!(c.agent().updates(), 1);
        c.end_of_window(&window(500, 300, 200, 400));
        assert_eq!(c.agent().updates(), 2);
    }

    #[test]
    fn poisoned_window_is_repaired_before_training() {
        let mut c = Controller::new(small_cfg());
        let mut w = window(500, 300, 200, 400);
        w.avg_scan_len = f64::NAN;
        w.block_hit_rate = f64::INFINITY;
        // Two windows so a transition actually trains on repaired inputs.
        c.end_of_window(&w);
        let d = c.end_of_window(&w);
        assert!(c.nonfinite_repairs() > 0, "poisoned features were counted");
        assert!(d.range_ratio.is_finite());
        assert!((0.0..=1.0).contains(&d.range_ratio));
        assert!(c.history().iter().all(|r| r.reward.is_finite()));
        // Training continued on sane values: a clean window still works.
        let d = c.end_of_window(&window(500, 300, 200, 400));
        assert!(d.range_ratio.is_finite());
        assert_eq!(c.agent().nonfinite_inputs(), 0, "repairs happen upstream");
    }

    #[test]
    fn adversarial_collapse_clamps_reward_and_freezes_adaptation() {
        // Low alpha so a collapse produces a large raw reward magnitude.
        let mut cfg = small_cfg();
        cfg.alpha = 0.5;
        let mut c = Controller::new(cfg);
        // Healthy windows: ~90% estimated hit rate.
        for _ in 0..5 {
            c.end_of_window(&window(1000, 0, 0, 100));
        }
        assert_eq!(c.adversarial_windows(), 0);
        let lr_before = c.agent().actor_lr();
        let std_before = c.agent().exploration_std();
        // The attack window: every estimated I/O misses.
        c.end_of_window(&window(1000, 0, 0, 1000));
        assert_eq!(c.adversarial_windows(), 1);
        let rec = c.history().last().unwrap();
        assert!(rec.adversarial);
        assert!(
            rec.reward.abs() <= 0.25 + 1e-9,
            "adversarial reward must be clamped: {}",
            rec.reward
        );
        assert_eq!(
            c.agent().actor_lr(),
            lr_before,
            "lr adaptation must freeze on the poisoned window"
        );
        assert_eq!(
            c.agent().exploration_std(),
            std_before,
            "exploration must not widen on the poisoned window"
        );
    }

    #[test]
    fn guard_disabled_passes_raw_reward_through() {
        let mut cfg = small_cfg();
        cfg.alpha = 0.5;
        cfg.adversarial_guard = false;
        let mut c = Controller::new(cfg);
        for _ in 0..5 {
            c.end_of_window(&window(1000, 0, 0, 100));
        }
        c.end_of_window(&window(1000, 0, 0, 1000));
        assert_eq!(c.adversarial_windows(), 0);
        let rec = c.history().last().unwrap();
        assert!(!rec.adversarial);
        assert!(
            rec.reward < -0.25,
            "without the guard the collapse hits the agent raw: {}",
            rec.reward
        );
    }

    #[test]
    fn guard_tolerates_organic_drift() {
        let mut c = Controller::new(small_cfg());
        // Hit rate degrades gradually (workload shift, not an attack).
        for miss in [100u64, 150, 200, 250, 300, 350] {
            c.end_of_window(&window(1000, 0, 0, miss));
        }
        assert_eq!(
            c.adversarial_windows(),
            0,
            "gradual degradation must not trip the guard"
        );
    }

    #[test]
    fn out_of_band_features_are_clipped() {
        let mut c = Controller::new(small_cfg());
        let mut w = window(500, 300, 200, 400);
        w.cache_fraction = 1.0e9; // a blown-out counter feeding a feature
        let d = c.end_of_window(&w);
        assert!(c.feature_clamps() > 0, "oversized feature must be clipped");
        assert!(d.range_ratio.is_finite());
        if let Some((state, _)) = &c.last {
            assert!(state.iter().all(|v| (0.0..=2.0).contains(v)));
        }
    }

    #[test]
    fn reward_history_reflects_hit_rate_trend() {
        let mut c = Controller::new(small_cfg());
        // Improving hit rate (io_miss shrinking) => positive rewards appear.
        for miss in [800u64, 600, 400, 200, 100] {
            c.end_of_window(&window(1000, 0, 0, miss));
        }
        let rewards: Vec<f64> = c.history().iter().map(|r| r.reward).collect();
        assert!(rewards[1..].iter().all(|&r| r > 0.0), "{rewards:?}");
    }
}
