//! # adcache-core — AdCache: RL-driven cache management for LSM-trees
//!
//! The primary contribution of the reproduced paper (EDBT 2026): a caching
//! system for LSM-tree key-value stores that
//!
//! 1. **partitions** one memory budget between a block cache and a range
//!    cache behind a dynamic boundary ([`engine`]),
//! 2. applies **admission control** — frequency-gated for point lookups,
//!    partial for scans — on the cache-fill path,
//! 3. and drives both with an online **actor-critic controller**
//!    ([`controller`]) trained on the I/O-based reward of [`reward`].
//!
//! [`engine::Strategy`] instantiates the paper's five baselines (RocksDB
//! block cache, KV cache, Range Cache with LRU / LeCaR / Cacheus) and
//! AdCache itself over the same native LSM engine, and [`runner`] drives
//! whole experiments: static mixes, the Table 3 dynamic schedule, and
//! multi-client runs. [`tenant`] partitions the cache budget into
//! per-tenant shared-nothing slices whose shares are re-learned online
//! by `adcache-rl`'s share arbiter.
//!
//! ```
//! use adcache_core::{CachedDb, EngineConfig, Strategy};
//! use adcache_lsm::{MemStorage, Options};
//! use bytes::Bytes;
//! use std::sync::Arc;
//!
//! let db = CachedDb::new(
//!     Options::small(),
//!     Arc::new(MemStorage::new()),
//!     EngineConfig::new(Strategy::AdCache, 1 << 20),
//! ).unwrap();
//! db.put(Bytes::from("k"), Bytes::from("v")).unwrap();
//! assert_eq!(db.get(b"k").unwrap().unwrap().as_ref(), b"v");
//! ```

#![warn(missing_docs)]

pub mod async_controller;
pub mod controller;
pub mod engine;
pub mod histogram;
pub mod reward;
pub mod runner;
pub mod stats;
pub mod tenant;

pub use async_controller::AsyncController;
pub use controller::{
    featurize_with, CacheDecision, Controller, ControllerConfig, TuningRecord, ACTION_DIM,
    STATE_DIM,
};
pub use engine::{
    CacheStatsReport, CachedDb, EngineConfig, EngineStatsReport, Strategy, TenantStatsReport,
};
pub use histogram::Histogram;
pub use reward::{h_estimate, io_estimate, io_estimate_of, RewardSmoother};
pub use runner::{
    execute, prepare_db, prepare_db_with_storage, run_multiclient, run_schedule, run_schedule_on,
    run_static, CpuModel, RunConfig, RunResult, WindowRecord,
};
pub use stats::{Counters, Snapshot, WindowSummary};
pub use tenant::{tenant_salt, Partition, TenantId, TenantWindow, DEFAULT_TENANT};
