//! Per-tenant cache partitions.
//!
//! Multi-tenant serving means isolation: one shared LRU lets any hot (or
//! hostile) tenant evict everyone else's working set. This module
//! partitions the engine's cache budget into shared-nothing per-tenant
//! sub-caches — each tenant owns its own block cache, result caches, and
//! tenant-salted admission sketch — so eviction pressure from tenant A
//! structurally *cannot* touch tenant B's entries: there is no shared
//! policy state to pressure. The split across tenants starts equal and
//! is re-learned online by the share arbiter (`adcache_rl::ShareAgent`),
//! with a guarded minimum share per tenant.
//!
//! [`Partition`] is the unit of isolation. The engine keeps one per
//! registered tenant plus the default partition serving tenant
//! [`DEFAULT_TENANT`], which legacy (pre-`Auth`) connections map to —
//! a single-tenant engine therefore behaves exactly as before this
//! module existed (one partition, share 1.0).

use crate::controller::CacheDecision;
use crate::engine::{EngineConfig, Strategy};
use adcache_cache::{
    BlockCache, CacheusPolicy, KvCache, LeCaRPolicy, LruPolicy, PointAdmission, RangeCache,
    SketchGuard,
};
use adcache_obs::{Counter, Gauge, Obs};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Identifies a tenant on the wire and in the engine.
pub type TenantId = u32;

/// The tenant that legacy (pre-`Auth`) connections serve.
pub const DEFAULT_TENANT: TenantId = 0;

/// splitmix64 — derives each tenant's sketch salt from its id, so hash
/// collisions engineered against one tenant's sketch don't transfer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The sketch salt for `tenant` (0 for the default tenant, preserving
/// the single-tenant engine's unsalted epoch-0 behavior).
pub fn tenant_salt(tenant: TenantId) -> u64 {
    if tenant == DEFAULT_TENANT {
        0
    } else {
        splitmix64(0x7E4A_4A17 ^ tenant as u64)
    }
}

/// Pre-resolved per-tenant telemetry handles (`cache.tenant.<id>.*`),
/// following the engine's hooks pattern: resolved once on attach,
/// lock-free afterwards, absent = inert.
pub(crate) struct TenantObsHooks {
    pub(crate) hits: Counter,
    pub(crate) misses: Counter,
    pub(crate) bytes: Gauge,
}

impl TenantObsHooks {
    fn new(obs: &Obs, tenant: TenantId) -> Self {
        TenantObsHooks {
            hits: obs.counter(&format!("cache.tenant.{tenant}.hits")),
            misses: obs.counter(&format!("cache.tenant.{tenant}.misses")),
            bytes: obs.gauge(&format!("cache.tenant.{tenant}.bytes")),
        }
    }
}

/// One tenant's window of activity, consumed by the share arbiter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantWindow {
    /// Tenant the window describes.
    pub tenant: TenantId,
    /// Result-cache hits in the window.
    pub hits: u64,
    /// Result-cache misses in the window.
    pub misses: u64,
    /// Operations charged to the tenant in the window.
    pub ops: u64,
    /// Resident bytes across the partition's caches.
    pub used_bytes: u64,
    /// The partition's current byte budget.
    pub budget_bytes: u64,
}

/// One tenant's shared-nothing slice of the cache layer: its own block
/// cache, result caches, and salted admission sketch, sized by the
/// tenant's share of the engine's total budget.
///
/// Isolation is structural, not policy: partitions share no LRU lists,
/// no sketch counters, and no capacity accounting, so nothing tenant A
/// does can select one of tenant B's entries for eviction. The only
/// cross-partition traffic is key-targeted write invalidation (tenants
/// share one keyspace, so a write to `k` must update every partition
/// that cached `k` — coherence, not capacity pressure).
pub struct Partition {
    tenant: TenantId,
    pub(crate) block_cache: Option<Arc<BlockCache>>,
    pub(crate) kv_cache: Option<KvCache>,
    pub(crate) range_cache: Option<RangeCache>,
    pub(crate) point_admission: Option<Mutex<PointAdmission>>,
    /// Current byte budget (share × engine total).
    budget: AtomicUsize,
    /// Current share of the engine total, in `[0, 1]`.
    share: RwLock<f64>,
    hits: AtomicU64,
    misses: AtomicU64,
    ops: AtomicU64,
    /// Marks from the last [`window`](Self::window) call.
    mark_hits: AtomicU64,
    mark_misses: AtomicU64,
    mark_ops: AtomicU64,
    obs: OnceLock<TenantObsHooks>,
}

impl Partition {
    /// Builds the partition's cache structures per the engine strategy,
    /// sized to `budget` bytes split by `ratio` (range-cache fraction,
    /// AdCache only) and gated at `threshold` (point admission).
    pub(crate) fn build(
        tenant: TenantId,
        cfg: &EngineConfig,
        budget: usize,
        ratio: f64,
        threshold: f64,
    ) -> Self {
        let mut block_cache = None;
        let mut kv_cache = None;
        let mut range_cache = None;
        let mut point_admission = None;
        match cfg.strategy {
            Strategy::RocksDbBlock => {
                block_cache = Some(Arc::new(BlockCache::new(budget, cfg.block_shards)));
            }
            Strategy::KvCache => {
                kv_cache = Some(KvCache::new(budget));
            }
            Strategy::RangeCache => {
                range_cache = Some(RangeCache::with_shards(
                    budget,
                    cfg.range_boundaries.clone(),
                    Box::new(|| Box::new(LruPolicy::new())),
                ));
            }
            Strategy::RangeCacheLeCaR => {
                range_cache = Some(RangeCache::with_shards(
                    budget,
                    cfg.range_boundaries.clone(),
                    Box::new(|| Box::new(LeCaRPolicy::new())),
                ));
            }
            Strategy::RangeCacheCacheus => {
                range_cache = Some(RangeCache::with_shards(
                    budget,
                    cfg.range_boundaries.clone(),
                    Box::new(|| Box::new(CacheusPolicy::new())),
                ));
            }
            Strategy::AdCache => {
                block_cache = Some(Arc::new(BlockCache::new(
                    (budget as f64 * (1.0 - ratio)) as usize,
                    cfg.block_shards,
                )));
                range_cache = Some(RangeCache::with_shards(
                    (budget as f64 * ratio) as usize,
                    cfg.range_boundaries.clone(),
                    Box::new(|| Box::new(LruPolicy::new())),
                ));
                let guard = if cfg.sketch_guard {
                    SketchGuard::default()
                } else {
                    SketchGuard::off()
                };
                let mut adm = PointAdmission::with_guard(cfg.expected_keys, threshold, guard);
                let salt = tenant_salt(tenant);
                if salt != 0 {
                    adm.resalt(salt);
                }
                point_admission = Some(Mutex::new(adm));
            }
        }
        Partition {
            tenant,
            block_cache,
            kv_cache,
            range_cache,
            point_admission,
            budget: AtomicUsize::new(budget),
            share: RwLock::new(0.0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            mark_hits: AtomicU64::new(0),
            mark_misses: AtomicU64::new(0),
            mark_ops: AtomicU64::new(0),
            obs: OnceLock::new(),
        }
    }

    /// The tenant this partition serves.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The partition's current share of the engine's cache budget.
    pub fn share(&self) -> f64 {
        *self.share.read()
    }

    pub(crate) fn set_share(&self, share: f64) {
        *self.share.write() = share;
    }

    /// The partition's current byte budget.
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Resident bytes across the partition's cache structures.
    pub fn used_bytes(&self) -> usize {
        self.block_cache.as_ref().map_or(0, |c| c.used())
            + self.range_cache.as_ref().map_or(0, |c| c.used())
            + self.kv_cache.as_ref().map_or(0, |c| c.used())
    }

    /// Result-cache `(hits, misses)` charged to the tenant since
    /// construction.
    pub fn hit_counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Operations the tenant has issued since construction.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Resizes the partition to `budget` bytes, split by `ratio` for
    /// AdCache (range fraction); single-structure strategies give the
    /// whole budget to their one cache.
    pub(crate) fn resize(&self, budget: usize, ratio: f64) {
        self.budget.store(budget, Ordering::Relaxed);
        match (&self.block_cache, &self.range_cache) {
            (Some(bc), Some(rc)) => {
                let range_bytes = (budget as f64 * ratio) as usize;
                bc.set_capacity(budget - range_bytes);
                rc.set_capacity(range_bytes);
            }
            (Some(bc), None) => {
                bc.set_capacity(budget);
            }
            (None, Some(rc)) => rc.set_capacity(budget),
            (None, None) => {}
        }
        if let Some(kv) = &self.kv_cache {
            kv.set_capacity(budget);
        }
        self.publish_bytes();
    }

    /// Wires the partition's caches and per-tenant telemetry to `obs`.
    /// A second call is a no-op (hooks resolve once).
    pub(crate) fn attach_obs(&self, obs: &Obs) {
        if let Some(bc) = &self.block_cache {
            bc.set_obs(obs.clone());
        }
        if let Some(rc) = &self.range_cache {
            rc.set_obs(obs.clone());
        }
        if let Some(kv) = &self.kv_cache {
            kv.set_obs(obs.clone());
        }
        if let Some(adm) = &self.point_admission {
            adm.lock().set_obs(obs.clone());
        }
        let _ = self.obs.set(TenantObsHooks::new(obs, self.tenant));
        self.publish_bytes();
    }

    /// Charges a result-cache hit to the tenant.
    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = self.obs.get() {
            h.hits.inc();
        }
    }

    /// Charges a result-cache miss to the tenant.
    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = self.obs.get() {
            h.misses.inc();
        }
    }

    /// Charges one operation (point or scan) to the tenant.
    pub(crate) fn note_op(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the partition's resident bytes to its gauge.
    pub(crate) fn publish_bytes(&self) {
        if let Some(h) = self.obs.get() {
            h.bytes.set(self.used_bytes() as i64);
        }
    }

    /// Drains the tenant's activity window (deltas since the previous
    /// call) for the share arbiter.
    pub(crate) fn window(&self) -> TenantWindow {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let ops = self.ops.load(Ordering::Relaxed);
        TenantWindow {
            tenant: self.tenant,
            hits: hits - self.mark_hits.swap(hits, Ordering::Relaxed),
            misses: misses - self.mark_misses.swap(misses, Ordering::Relaxed),
            ops: ops - self.mark_ops.swap(ops, Ordering::Relaxed),
            used_bytes: self.used_bytes() as u64,
            budget_bytes: self.budget() as u64,
        }
    }

    /// Applies the controller's admission retune to this partition.
    pub(crate) fn apply_admission(&self, d: &CacheDecision) {
        if let Some(adm) = &self.point_admission {
            adm.lock().set_threshold(d.point_threshold);
        }
    }

    /// Empties the partition's caches, preserving capacities.
    pub(crate) fn clear(&self) {
        if let Some(bc) = &self.block_cache {
            bc.clear();
        }
        if let Some(rc) = &self.range_cache {
            rc.clear();
        }
        if let Some(kv) = &self.kv_cache {
            kv.clear();
        }
        self.publish_bytes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_salts_are_distinct_and_default_is_unsalted() {
        assert_eq!(tenant_salt(DEFAULT_TENANT), 0);
        let salts: Vec<u64> = (1..32).map(tenant_salt).collect();
        for (i, &a) in salts.iter().enumerate() {
            assert_ne!(a, 0);
            for &b in &salts[i + 1..] {
                assert_ne!(a, b, "tenant salts must be distinct");
            }
        }
    }

    #[test]
    fn partition_window_drains_deltas() {
        let cfg = EngineConfig::new(Strategy::AdCache, 1 << 20);
        let p = Partition::build(3, &cfg, 1 << 20, 0.5, 0.0);
        p.note_hit();
        p.note_hit();
        p.note_miss();
        p.note_op();
        let w = p.window();
        assert_eq!((w.hits, w.misses, w.ops), (2, 1, 1));
        let w = p.window();
        assert_eq!((w.hits, w.misses, w.ops), (0, 0, 0), "window must drain");
        assert_eq!(w.tenant, 3);
    }
}
