//! Log-bucketed latency histogram.
//!
//! The implementation lives in [`adcache_obs::histogram`] so the
//! observability layer's metrics registry can share the bucketing scheme;
//! this module re-exports it to keep `adcache_core::Histogram` (and every
//! existing import path) stable.

pub use adcache_obs::histogram::{AtomicHistogram, Histogram};
