//! The Stats Collector (paper Figure 4): per-window workload statistics and
//! block-I/O measurements feeding the Policy Decision Controller.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared by all client threads.
#[derive(Debug, Default)]
pub struct Counters {
    /// Point lookups issued.
    pub points: AtomicU64,
    /// Range scans issued.
    pub scans: AtomicU64,
    /// Writes (puts + deletes) issued.
    pub writes: AtomicU64,
    /// Sum of requested scan lengths (for the average).
    pub scan_len_sum: AtomicU64,
    /// Queries answered by the range cache (full hits, incl. negative).
    pub range_hits: AtomicU64,
    /// Queries answered by the KV cache.
    pub kv_hits: AtomicU64,
    /// Queries that consulted the LSM tree (range/KV caches missed).
    pub cache_misses: AtomicU64,
    /// Entries returned by scans (CPU cost accounting).
    pub entries_returned: AtomicU64,
    /// Reads that failed at the storage layer (fault injection or real I/O
    /// errors). Counted toward `IO_miss` so the controller sees a failing
    /// device as a cold cache, never as free hits.
    pub failed_reads: AtomicU64,
}

impl Counters {
    #[allow(missing_docs)]
    pub fn add_point(&self) {
        self.points.fetch_add(1, Ordering::Relaxed);
    }
    #[allow(missing_docs)]
    pub fn add_scan(&self, len: usize) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.scan_len_sum.fetch_add(len as u64, Ordering::Relaxed);
    }
    #[allow(missing_docs)]
    pub fn add_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }
    #[allow(missing_docs)]
    pub fn add_failed_read(&self) {
        self.failed_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Total operations so far.
    pub fn total_ops(&self) -> u64 {
        self.points.load(Ordering::Relaxed)
            + self.scans.load(Ordering::Relaxed)
            + self.writes.load(Ordering::Relaxed)
    }
}

/// A snapshot of every counter relevant to one window boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Snapshot {
    /// Point lookups issued so far.
    pub points: u64,
    /// Scans issued so far.
    pub scans: u64,
    /// Writes issued so far.
    pub writes: u64,
    /// Sum of requested scan lengths so far.
    pub scan_len_sum: u64,
    /// Range-cache query hits so far.
    pub range_hits: u64,
    /// KV-cache query hits so far.
    pub kv_hits: u64,
    /// Cache-system misses so far.
    pub cache_misses: u64,
    /// Query-path SST block reads so far (compaction I/O excluded).
    pub query_block_reads: u64,
    /// Block-cache hits so far.
    pub block_cache_hits: u64,
    /// Block-cache misses so far.
    pub block_cache_misses: u64,
    /// Compactions completed so far.
    pub compactions: u64,
    /// Simulated device nanoseconds so far.
    pub simulated_ns: u64,
    /// Storage-layer read failures so far.
    pub failed_reads: u64,
}

/// Per-window deltas derived from two snapshots, plus tree-shape context —
/// the controller's observation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSummary {
    /// Point lookups in the window.
    pub points: u64,
    /// Scans in the window.
    pub scans: u64,
    /// Writes in the window.
    pub writes: u64,
    /// Average requested scan length (0 when no scans ran).
    pub avg_scan_len: f64,
    /// Range-cache query hits in the window.
    pub range_hits: u64,
    /// KV-cache query hits in the window.
    pub kv_hits: u64,
    /// Cache-system misses in the window.
    pub cache_misses: u64,
    /// Query-path SST block reads in the window (`IO_miss`).
    pub io_miss: u64,
    /// Block-cache hit rate inside the window.
    pub block_hit_rate: f64,
    /// Compactions that completed during the window.
    pub compactions: u64,
    /// Simulated device time spent in the window (ns).
    pub simulated_ns: u64,
    /// Entries per block (`B`).
    pub entries_per_block: f64,
    /// Non-empty level count (`L`).
    pub levels: usize,
    /// Sorted-run count (`r`).
    pub runs: usize,
    /// Maximum Level-0 runs before write stop (`r0_max`).
    pub r0_max: usize,
    /// Current block-cache occupancy fraction.
    pub block_occupancy: f64,
    /// Current range-cache occupancy fraction.
    pub range_occupancy: f64,
    /// Total cache budget as a fraction of the dataset size.
    pub cache_fraction: f64,
}

impl WindowSummary {
    /// Ops in the window.
    pub fn ops(&self) -> u64 {
        self.points + self.scans + self.writes
    }

    /// Delta between two snapshots (`end - start`).
    ///
    /// Every field saturates at zero: snapshots taken concurrently with
    /// serving threads can observe counters in slightly different orders
    /// (and callers may pass swapped or stale snapshots), and a panic on
    /// wraparound inside the stats path would take the whole run down.
    pub fn from_snapshots(start: &Snapshot, end: &Snapshot) -> Self {
        let scans = end.scans.saturating_sub(start.scans);
        let scan_len = end.scan_len_sum.saturating_sub(start.scan_len_sum);
        let bh = end.block_cache_hits.saturating_sub(start.block_cache_hits);
        let bm = end
            .block_cache_misses
            .saturating_sub(start.block_cache_misses);
        WindowSummary {
            points: end.points.saturating_sub(start.points),
            scans,
            writes: end.writes.saturating_sub(start.writes),
            avg_scan_len: if scans == 0 {
                0.0
            } else {
                scan_len as f64 / scans as f64
            },
            range_hits: end.range_hits.saturating_sub(start.range_hits),
            kv_hits: end.kv_hits.saturating_sub(start.kv_hits),
            cache_misses: end.cache_misses.saturating_sub(start.cache_misses),
            io_miss: end
                .query_block_reads
                .saturating_sub(start.query_block_reads)
                + end.failed_reads.saturating_sub(start.failed_reads),
            block_hit_rate: if bh + bm == 0 {
                0.0
            } else {
                bh as f64 / (bh + bm) as f64
            },
            compactions: end.compactions.saturating_sub(start.compactions),
            simulated_ns: end.simulated_ns.saturating_sub(start.simulated_ns),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counters::default();
        c.add_point();
        c.add_scan(16);
        c.add_scan(64);
        c.add_write();
        assert_eq!(c.points.load(Ordering::Relaxed), 1);
        assert_eq!(c.scans.load(Ordering::Relaxed), 2);
        assert_eq!(c.scan_len_sum.load(Ordering::Relaxed), 80);
        assert_eq!(c.total_ops(), 4);
    }

    #[test]
    fn window_summary_is_a_delta() {
        let start = Snapshot {
            points: 10,
            scans: 5,
            scan_len_sum: 80,
            query_block_reads: 100,
            block_cache_hits: 50,
            block_cache_misses: 50,
            ..Default::default()
        };
        let end = Snapshot {
            points: 30,
            scans: 10,
            scan_len_sum: 240,
            query_block_reads: 150,
            block_cache_hits: 80,
            block_cache_misses: 60,
            ..Default::default()
        };
        let w = WindowSummary::from_snapshots(&start, &end);
        assert_eq!(w.points, 20);
        assert_eq!(w.scans, 5);
        assert_eq!(w.avg_scan_len, 32.0);
        assert_eq!(w.io_miss, 50);
        assert!((w.block_hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(w.ops(), 25);
    }

    #[test]
    fn swapped_snapshots_saturate_instead_of_panicking() {
        let newer = Snapshot {
            points: 30,
            scans: 10,
            scan_len_sum: 240,
            query_block_reads: 150,
            block_cache_hits: 80,
            block_cache_misses: 60,
            compactions: 3,
            simulated_ns: 1_000,
            ..Default::default()
        };
        let older = Snapshot {
            points: 10,
            scans: 5,
            ..Default::default()
        };
        // Arguments reversed: every delta would underflow without the
        // saturating arithmetic.
        let w = WindowSummary::from_snapshots(&newer, &older);
        assert_eq!(w.points, 0);
        assert_eq!(w.scans, 0);
        assert_eq!(w.avg_scan_len, 0.0);
        assert_eq!(w.io_miss, 0);
        assert_eq!(w.block_hit_rate, 0.0);
        assert_eq!(w.compactions, 0);
        assert_eq!(w.simulated_ns, 0);
    }

    #[test]
    fn failed_reads_count_toward_io_miss() {
        let start = Snapshot {
            query_block_reads: 100,
            failed_reads: 2,
            ..Default::default()
        };
        let end = Snapshot {
            query_block_reads: 130,
            failed_reads: 7,
            ..Default::default()
        };
        let w = WindowSummary::from_snapshots(&start, &end);
        assert_eq!(w.io_miss, 35, "30 block reads + 5 failed reads");
    }

    #[test]
    fn zero_scan_window_has_zero_avg_len() {
        let w = WindowSummary::from_snapshots(&Snapshot::default(), &Snapshot::default());
        assert_eq!(w.avg_scan_len, 0.0);
        assert_eq!(w.block_hit_rate, 0.0);
    }
}
