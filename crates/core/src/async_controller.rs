//! Asynchronous background tuning (paper Sections 3.1 / 4.2).
//!
//! "All model inference and training occur asynchronously in the
//! background. Cache parameter updates are decoupled from the main query
//! serving path." [`AsyncController`] realizes that: a dedicated worker
//! thread owns the [`Controller`]; serving threads push window summaries
//! into an unbounded channel and pick up the latest decision with a single
//! atomic-guarded read — they never block on inference or training.
//!
//! Decisions are therefore at least one window behind the observations
//! that produced them, exactly the staleness the paper accepts by design.

use crate::controller::{CacheDecision, Controller, ControllerConfig, TuningRecord};
use crate::stats::WindowSummary;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

enum Msg {
    Window(WindowSummary),
    Shutdown,
}

struct Shared {
    decision: Mutex<CacheDecision>,
    history: Mutex<Vec<TuningRecord>>,
}

/// A [`Controller`] running on its own thread.
pub struct AsyncController {
    tx: Sender<Msg>,
    shared: Arc<Shared>,
    worker: Option<JoinHandle<Controller>>,
}

impl AsyncController {
    /// Spawns the tuning thread with a fresh agent.
    pub fn new(cfg: ControllerConfig) -> Self {
        Self::with_controller(Controller::new(cfg))
    }

    /// Spawns the tuning thread around an existing (e.g. pretrained)
    /// controller.
    pub fn with_controller(mut controller: Controller) -> Self {
        let (tx, rx) = unbounded::<Msg>();
        let shared = Arc::new(Shared {
            decision: Mutex::new(controller.decision()),
            history: Mutex::new(Vec::new()),
        });
        let shared2 = shared.clone();
        let worker = std::thread::Builder::new()
            .name("adcache-tuner".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Window(w) => {
                            let d = controller.end_of_window(&w);
                            *shared2.decision.lock() = d;
                            if let Some(rec) = controller.history().last() {
                                shared2.history.lock().push(rec.clone());
                            }
                        }
                        Msg::Shutdown => break,
                    }
                }
                controller
            })
            .expect("spawn tuner thread");
        AsyncController {
            tx,
            shared,
            worker: Some(worker),
        }
    }

    /// Submits a finished window for background training. Never blocks.
    pub fn submit(&self, w: WindowSummary) {
        // A full channel cannot happen (unbounded); a disconnected one
        // means the worker died, which `join` will surface.
        let _ = self.tx.send(Msg::Window(w));
    }

    /// The most recent decision produced by the background thread (may lag
    /// the latest submissions; that is the design).
    pub fn latest_decision(&self) -> CacheDecision {
        *self.shared.decision.lock()
    }

    /// Tuning records produced so far.
    pub fn history(&self) -> Vec<TuningRecord> {
        self.shared.history.lock().clone()
    }

    /// Stops the worker, waits for it to drain pending windows, and
    /// returns the controller (e.g. to save the trained agent).
    pub fn shutdown(mut self) -> Controller {
        let _ = self.tx.send(Msg::Shutdown);
        self.worker
            .take()
            .expect("worker present")
            .join()
            .expect("tuner thread panicked")
    }
}

impl Drop for AsyncController {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(points: u64, io_miss: u64) -> WindowSummary {
        WindowSummary {
            points,
            io_miss,
            entries_per_block: 4.0,
            levels: 3,
            r0_max: 8,
            runs: 5,
            ..Default::default()
        }
    }

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            hidden: 16,
            ..Default::default()
        }
    }

    #[test]
    fn decisions_arrive_asynchronously() {
        let ctl = AsyncController::new(cfg());
        let initial = ctl.latest_decision();
        for i in 0..20 {
            ctl.submit(window(1000, 400 + i * 10));
        }
        // Drain via shutdown, then check the worker actually tuned.
        let controller = ctl.shutdown();
        assert_eq!(controller.history().len(), 20);
        assert!(controller.agent().updates() >= 19);
        let _ = initial;
    }

    #[test]
    fn latest_decision_reflects_processing() {
        let ctl = AsyncController::new(cfg());
        ctl.submit(window(1000, 100));
        // Wait (bounded) for the worker to process.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ctl.history().is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "worker made no progress"
            );
            std::thread::yield_now();
        }
        assert_eq!(ctl.history().len(), 1);
        let d = ctl.latest_decision();
        assert!((0.0..=1.0).contains(&d.range_ratio));
    }

    #[test]
    fn submit_never_blocks_under_burst() {
        let ctl = AsyncController::new(cfg());
        let start = std::time::Instant::now();
        for _ in 0..200 {
            ctl.submit(window(1000, 500));
        }
        // 200 submissions must be near-instant even though training lags.
        assert!(
            start.elapsed().as_millis() < 500,
            "submit blocked on training"
        );
        let controller = ctl.shutdown();
        assert_eq!(controller.history().len(), 200, "shutdown drains the queue");
    }

    #[test]
    fn drop_without_shutdown_is_clean() {
        let ctl = AsyncController::new(cfg());
        ctl.submit(window(1000, 100));
        drop(ctl); // must not hang or panic
    }
}
