//! The experiment runner: drives workloads against a [`CachedDb`], runs the
//! windowed controller, and records the per-window series the paper plots.
//!
//! Throughput is reported against *simulated time*: device time accumulated
//! by the storage cost model plus a per-operation CPU charge. This is the
//! substitution for the paper's NVMe testbed (DESIGN.md §2) — relative
//! throughput between strategies is meaningful, absolute QPS is not. Wall
//! time is recorded separately for the training-overhead experiment
//! (Figure 11a), where real CPU interference is the quantity of interest.

use crate::controller::{CacheDecision, Controller, ControllerConfig};
use crate::engine::{CachedDb, EngineConfig, Strategy};
use crate::histogram::Histogram;
use crate::reward::h_estimate;
use crate::stats::WindowSummary;
use adcache_lsm::{MemStorage, Options, Result};
use adcache_obs::{Event, Obs};
use adcache_workload::{Mix, Operation, Schedule, WorkloadConfig, WorkloadGen};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// CPU cost model added to device time when computing simulated QPS.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Fixed nanoseconds charged per operation.
    pub ns_per_op: u64,
    /// Nanoseconds charged per entry returned by scans.
    pub ns_per_entry: u64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            ns_per_op: 2_000,
            ns_per_entry: 100,
        }
    }
}

/// Full experiment configuration.
#[derive(Clone)]
pub struct RunConfig {
    /// Cache strategy under test.
    pub strategy: Strategy,
    /// Total cache budget in bytes.
    pub total_cache_bytes: usize,
    /// LSM-tree options.
    pub db_options: Options,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// Controller configuration (used only by [`Strategy::AdCache`]).
    pub controller: ControllerConfig,
    /// CPU cost model for simulated throughput.
    pub cpu: CpuModel,
    /// Shards for block/range caches (multi-client runs).
    pub shards: usize,
    /// Optional pretrained agent JSON (AdCache only).
    pub pretrained_agent: Option<String>,
    /// Pin AdCache's decision instead of running the controller (used by
    /// controlled experiments and ablations).
    pub pinned_decision: Option<CacheDecision>,
    /// Boundary hysteresis passed to the engine (ablation knob).
    pub boundary_hysteresis: f64,
    /// Partial range serving passed to the engine (ablation knob).
    pub serve_partial_range: bool,
    /// Post-compaction prefetch depth passed to the engine (extension).
    pub compaction_prefetch_blocks: usize,
    /// When set, the run records a structured trace and dumps
    /// `trace.jsonl` + `metrics.json` into this directory on completion.
    /// The `ADCACHE_TRACE` environment variable provides the same behavior
    /// for existing binaries without code changes (the config field wins
    /// when both are present).
    pub trace_dir: Option<PathBuf>,
    /// Keep executing when an operation fails (fault drills): the error is
    /// counted in [`RunResult::op_errors`] instead of aborting the run.
    /// Default `false` — normal experiments treat any I/O error as fatal.
    pub continue_on_error: bool,
}

impl RunConfig {
    /// A sensible scaled-down default for the given strategy and cache size.
    pub fn new(strategy: Strategy, total_cache_bytes: usize, workload: WorkloadConfig) -> Self {
        RunConfig {
            strategy,
            total_cache_bytes,
            db_options: Options::small(),
            workload,
            controller: ControllerConfig {
                hidden: 64,
                ..Default::default()
            },
            cpu: CpuModel::default(),
            shards: 1,
            pretrained_agent: None,
            pinned_decision: None,
            boundary_hysteresis: 0.02,
            serve_partial_range: true,
            compaction_prefetch_blocks: 0,
            trace_dir: None,
            continue_on_error: false,
        }
    }

    /// The directory traces should be dumped to, honoring the
    /// `ADCACHE_TRACE` environment variable as a fallback.
    pub fn effective_trace_dir(&self) -> Option<PathBuf> {
        self.trace_dir
            .clone()
            .or_else(|| std::env::var_os("ADCACHE_TRACE").map(PathBuf::from))
    }
}

/// Builds the observability handle for a run and attaches it to the engine
/// and (optional) controller. Returns the handle plus the dump directory;
/// both sides are no-ops when tracing is off.
fn attach_obs(
    cfg: &RunConfig,
    db: &CachedDb,
    controller: Option<&mut Controller>,
) -> (Obs, Option<PathBuf>) {
    let Some(dir) = cfg.effective_trace_dir() else {
        return (Obs::disabled(), None);
    };
    db.set_obs(Obs::enabled());
    // `set_obs` is first-write-wins, so read back the handle actually wired
    // into the engine (a shared db may have been traced by an earlier run).
    let obs = db.obs();
    if let Some(c) = controller {
        c.set_obs(obs.clone());
    }
    let strategy = cfg.strategy.name();
    let total = cfg.total_cache_bytes as u64;
    obs.emit(|| Event::RunStart {
        strategy: strategy.into(),
        total_cache_bytes: total,
    });
    (obs, Some(dir))
}

/// One window's measurements.
#[derive(Debug, Clone)]
pub struct WindowRecord {
    /// Window index from the start of the measured run.
    pub index: u64,
    /// Name of the phase the window belongs to.
    pub phase: String,
    /// Estimated hit rate (`1 − IO_miss / IO_estimate`).
    pub hit_rate: f64,
    /// SST block reads in the window.
    pub sst_reads: u64,
    /// Simulated QPS inside the window.
    pub qps: f64,
    /// The controller decision applied after this window (AdCache only).
    pub decision: Option<CacheDecision>,
    /// The full window observation (for pretraining and deep analysis).
    pub summary: WindowSummary,
}

/// Aggregate results of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Strategy name.
    pub strategy: &'static str,
    /// Per-window series.
    pub windows: Vec<WindowRecord>,
    /// Total measured operations.
    pub total_ops: u64,
    /// Total SST block reads during measurement.
    pub total_sst_reads: u64,
    /// Overall estimated hit rate across the whole run.
    pub overall_hit_rate: f64,
    /// Overall simulated QPS.
    pub overall_qps: f64,
    /// Wall-clock seconds for the measured portion.
    pub wall_secs: f64,
    /// Distribution of per-operation simulated latencies (device time plus
    /// the CPU charge), in nanoseconds.
    pub latency: Histogram,
    /// Operations that failed and were skipped (only non-zero when
    /// [`RunConfig::continue_on_error`] is set).
    pub op_errors: u64,
    /// Non-finite controller inputs repaired before training (see
    /// [`Controller::nonfinite_repairs`]); always 0 for baselines.
    pub nonfinite_repairs: u64,
    /// Device fsyncs issued over the whole run (file and directory syncs
    /// charged to the simulated clock; 0 unless a sync policy is active).
    pub device_syncs: u64,
}

impl RunResult {
    /// Mean hit rate over windows in `[from, to)` (e.g. one phase).
    pub fn mean_hit_rate(&self, from: usize, to: usize) -> f64 {
        let slice = &self.windows[from.min(self.windows.len())..to.min(self.windows.len())];
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().map(|w| w.hit_rate).sum::<f64>() / slice.len() as f64
    }

    /// Mean QPS over windows in `[from, to)`.
    pub fn mean_qps(&self, from: usize, to: usize) -> f64 {
        let slice = &self.windows[from.min(self.windows.len())..to.min(self.windows.len())];
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().map(|w| w.qps).sum::<f64>() / slice.len() as f64
    }
}

fn simulated_window_ns(w: &WindowSummary, cpu: &CpuModel, entries_delta: u64) -> u64 {
    w.simulated_ns + w.ops() * cpu.ns_per_op + entries_delta * cpu.ns_per_entry
}

/// Builds the engine, loads `workload.num_keys` keys, and settles
/// compactions so measurement starts from a steady tree.
pub fn prepare_db(cfg: &RunConfig) -> Result<CachedDb> {
    prepare_db_with_storage(cfg, Arc::new(MemStorage::new()))
}

/// Like [`prepare_db`] but over a caller-supplied storage backend (file
/// storage for durability drills, a fault-injecting wrapper for resilience
/// tests).
pub fn prepare_db_with_storage(
    cfg: &RunConfig,
    storage: Arc<dyn adcache_lsm::Storage>,
) -> Result<CachedDb> {
    let mut ecfg = EngineConfig::new(cfg.strategy, cfg.total_cache_bytes);
    ecfg.block_shards = cfg.shards;
    ecfg.expected_keys = cfg.workload.num_keys as usize;
    ecfg.boundary_hysteresis = cfg.boundary_hysteresis;
    ecfg.serve_partial_range = cfg.serve_partial_range;
    ecfg.compaction_prefetch_blocks = cfg.compaction_prefetch_blocks;
    if cfg.shards > 1 {
        // Evenly split the key space for range-cache sharding.
        let per = cfg.workload.num_keys / cfg.shards as u64;
        ecfg.range_boundaries = (1..cfg.shards as u64)
            .map(|i| adcache_workload::render_key(i * per))
            .collect();
    }
    let db = CachedDb::new(cfg.db_options.clone(), storage, ecfg)?;
    let mut gen = WorkloadGen::new(cfg.workload.clone());
    for op in gen.load_ops() {
        if let Operation::Put { key, value } = op {
            db.load(key, value)?;
        }
    }
    db.db().flush()?;
    while db.db().maybe_compact_once()? {}
    db.refresh_shape();
    Ok(db)
}

fn make_controller(cfg: &RunConfig) -> Controller {
    match &cfg.pretrained_agent {
        Some(json) => {
            let agent =
                adcache_rl::ActorCritic::from_json(json).expect("invalid pretrained agent JSON");
            Controller::with_agent(cfg.controller.clone(), agent)
        }
        None => Controller::new(cfg.controller.clone()),
    }
}

/// Executes one operation against the engine.
pub fn execute(db: &CachedDb, op: &Operation) -> Result<()> {
    match op {
        Operation::Get { key } => {
            db.get(key)?;
        }
        Operation::Scan { from, len } => {
            db.scan(from, *len)?;
        }
        Operation::Put { key, value } => {
            db.put(key.clone(), value.clone())?;
        }
        Operation::Delete { key } => {
            db.delete(key.clone())?;
        }
    }
    Ok(())
}

/// The engine as an [`adcache_workload::OpSink`]: lets trace replay and the
/// phase drivers target an in-process [`CachedDb`] through the same trait
/// the network load generator uses for a remote server.
impl adcache_workload::OpSink for &CachedDb {
    type Error = adcache_lsm::LsmError;

    fn apply(&mut self, op: &Operation) -> std::result::Result<(), Self::Error> {
        execute(self, op)
    }
}

/// Runs `schedule` against a fresh engine and returns the per-window
/// series. Deterministic in the workload seed.
pub fn run_schedule(cfg: &RunConfig, schedule: &Schedule) -> Result<RunResult> {
    let db = prepare_db(cfg)?;
    run_schedule_on(cfg, schedule, &db)
}

/// Like [`run_schedule`] but reuses an already-prepared engine (lets
/// experiments share the load phase across runs of the same strategy).
pub fn run_schedule_on(cfg: &RunConfig, schedule: &Schedule, db: &CachedDb) -> Result<RunResult> {
    let mut gen = WorkloadGen::new(cfg.workload.clone());
    let mut controller = if cfg.strategy == Strategy::AdCache && cfg.pinned_decision.is_none() {
        Some(make_controller(cfg))
    } else {
        None
    };
    let (obs, trace_dir) = attach_obs(cfg, db, controller.as_mut());
    if let Some(d) = &cfg.pinned_decision {
        db.apply_decision(d);
    }

    let window = cfg.controller.window.max(1);
    let mut windows = Vec::new();
    let run_start_snapshot = db.snapshot();
    let mut win_start = run_start_snapshot;
    let mut entries_at_win_start = 0u64;
    let wall_start = std::time::Instant::now();
    let mut executed = 0u64;
    let mut latency = Histogram::new();
    let obs_latency = obs.histogram("op.latency_ns");
    let io_stats = db.db().storage().stats();
    let mut last_sim_ns = io_stats.simulated_ns();
    let mut last_entries = 0u64;

    let total = schedule.total_ops();
    let mut op_errors = 0u64;
    while executed < total {
        let (phase, _) = schedule.phase_at(executed).expect("within schedule");
        let op = gen.next_op(&phase.mix);
        match execute(db, &op) {
            Ok(()) => {}
            Err(_) if cfg.continue_on_error => op_errors += 1,
            Err(e) => return Err(e),
        }
        // Per-op simulated latency: device time consumed by this op plus
        // the CPU charge for the op itself and any entries it returned.
        let sim_now = io_stats.simulated_ns();
        let entries_now = db.counters().entries_returned.load(Ordering::Relaxed);
        let op_ns = (sim_now - last_sim_ns)
            + cfg.cpu.ns_per_op
            + (entries_now - last_entries) * cfg.cpu.ns_per_entry;
        latency.record(op_ns);
        obs_latency.record(op_ns);
        last_sim_ns = sim_now;
        last_entries = entries_now;
        executed += 1;
        if executed.is_multiple_of(window) {
            let w = db.window_summary(&win_start);
            let entries_now = db.counters().entries_returned.load(Ordering::Relaxed);
            let sim_ns = simulated_window_ns(&w, &cfg.cpu, entries_now - entries_at_win_start);
            let qps = if sim_ns == 0 {
                0.0
            } else {
                w.ops() as f64 * 1e9 / sim_ns as f64
            };
            let decision = controller.as_mut().map(|c| {
                let d = c.end_of_window(&w);
                db.apply_decision(&d);
                d
            });
            windows.push(WindowRecord {
                index: executed / window - 1,
                phase: phase.name.clone(),
                hit_rate: h_estimate(&w),
                sst_reads: w.io_miss,
                qps,
                decision,
                summary: w,
            });
            win_start = db.snapshot();
            entries_at_win_start = entries_now;
            obs.set_window(executed / window);
        }
    }

    let overall = db.window_summary(&run_start_snapshot);
    let entries_total = db.counters().entries_returned.load(Ordering::Relaxed);
    let sim_ns = simulated_window_ns(&overall, &cfg.cpu, entries_total);
    if let Some(dir) = &trace_dir {
        obs.gauge("run.total_ops").set(overall.ops() as i64);
        obs.gauge("run.windows").set(windows.len() as i64);
        obs.gauge("run.sst_reads").set(overall.io_miss as i64);
        obs.gauge("run.hit_rate_milli")
            .set((h_estimate(&overall) * 1000.0) as i64);
        obs.dump_to_dir(dir)?;
    }
    Ok(RunResult {
        strategy: cfg.strategy.name(),
        total_ops: overall.ops(),
        total_sst_reads: overall.io_miss,
        overall_hit_rate: h_estimate(&overall),
        overall_qps: if sim_ns == 0 {
            0.0
        } else {
            overall.ops() as f64 * 1e9 / sim_ns as f64
        },
        wall_secs: wall_start.elapsed().as_secs_f64(),
        windows,
        latency,
        op_errors,
        nonfinite_repairs: controller.as_ref().map_or(0, |c| c.nonfinite_repairs()),
        device_syncs: io_stats.syncs(),
    })
}

/// Convenience: run a single static mix for `ops` operations.
pub fn run_static(cfg: &RunConfig, mix: Mix, ops: u64) -> Result<RunResult> {
    let schedule = Schedule {
        phases: vec![adcache_workload::Phase {
            name: "static".into(),
            mix,
            ops,
        }],
    };
    run_schedule(cfg, &schedule)
}

/// Multi-client run (Figure 11a): `clients` threads share the engine while
/// an [`crate::AsyncController`] trains on its own background thread —
/// "model inference and training occur asynchronously in the background"
/// (paper Section 3.1). The thread that crosses a window boundary only
/// snapshots counters and enqueues the summary (cheap, non-blocking), then
/// applies the latest available decision. Returns per-client *wall-clock*
/// QPS, since the experiment measures real CPU interference from training.
pub fn run_multiclient(
    cfg: &RunConfig,
    mix: Mix,
    clients: usize,
    ops_per_client: u64,
) -> Result<Vec<f64>> {
    let db = Arc::new(prepare_db(cfg)?);
    let mut tuner = if cfg.strategy == Strategy::AdCache && cfg.controller.online {
        Some(make_controller(cfg))
    } else {
        None
    };
    let (obs, trace_dir) = attach_obs(cfg, &db, tuner.as_mut());
    let controller = tuner.map(|c| Arc::new(crate::AsyncController::with_controller(c)));
    let global_ops = Arc::new(AtomicU64::new(0));
    let win_start = Arc::new(Mutex::new(db.snapshot()));
    let window = cfg.controller.window.max(1);

    let mut handles = Vec::new();
    for client in 0..clients {
        let db = db.clone();
        let controller = controller.clone();
        let global_ops = global_ops.clone();
        let win_start = win_start.clone();
        let obs = obs.clone();
        let mut wcfg = cfg.workload.clone();
        wcfg.seed = cfg.workload.seed.wrapping_add(client as u64 * 7919 + 1);
        handles.push(std::thread::spawn(move || -> Result<f64> {
            let mut gen = WorkloadGen::new(wcfg);
            let start = std::time::Instant::now();
            for _ in 0..ops_per_client {
                let op = gen.next_op(&mix);
                execute(&db, &op)?;
                let n = global_ops.fetch_add(1, Ordering::Relaxed) + 1;
                if n.is_multiple_of(window) {
                    obs.set_window(n / window);
                    if let Some(ctl) = &controller {
                        // Snapshot + enqueue only; training happens on the
                        // tuner thread.
                        let start_snap = { *win_start.lock() };
                        let w = db.window_summary(&start_snap);
                        ctl.submit(w);
                        db.apply_decision(&ctl.latest_decision());
                        *win_start.lock() = db.snapshot();
                    }
                }
            }
            Ok(ops_per_client as f64 / start.elapsed().as_secs_f64())
        }));
    }
    let qps = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect::<Result<Vec<f64>>>()?;
    if let Some(dir) = &trace_dir {
        obs.dump_to_dir(dir)?;
    }
    Ok(qps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcache_workload::paper_dynamic_schedule;

    fn quick_cfg(strategy: Strategy) -> RunConfig {
        let workload = WorkloadConfig {
            num_keys: 3000,
            value_size: 64,
            ..Default::default()
        };
        let mut cfg = RunConfig::new(strategy, 128 << 10, workload);
        cfg.controller.window = 200;
        cfg.controller.hidden = 16;
        cfg
    }

    #[test]
    fn static_run_produces_windows() {
        let cfg = quick_cfg(Strategy::RocksDbBlock);
        let r = run_static(&cfg, Mix::new(100.0, 0.0, 0.0, 0.0), 2000).unwrap();
        assert_eq!(r.total_ops, 2000);
        assert_eq!(r.windows.len(), 10);
        assert!(r.overall_qps > 0.0);
        assert!(r.overall_hit_rate <= 1.0);
        assert_eq!(r.strategy, "rocksdb-block");
        // Hit rate should climb as the cache warms.
        assert!(
            r.windows.last().unwrap().hit_rate >= r.windows[0].hit_rate - 0.05,
            "warming cache should not get colder: {:?}",
            r.windows.iter().map(|w| w.hit_rate).collect::<Vec<_>>()
        );
    }

    #[test]
    fn adcache_run_records_decisions() {
        let cfg = quick_cfg(Strategy::AdCache);
        let r = run_static(&cfg, Mix::new(50.0, 25.0, 0.0, 25.0), 2000).unwrap();
        assert!(r.windows.iter().all(|w| w.decision.is_some()));
        // Baselines never record decisions.
        let cfg = quick_cfg(Strategy::RangeCache);
        let r = run_static(&cfg, Mix::new(50.0, 25.0, 0.0, 25.0), 1000).unwrap();
        assert!(r.windows.iter().all(|w| w.decision.is_none()));
    }

    #[test]
    fn identical_seeds_reproduce_results() {
        let cfg = quick_cfg(Strategy::RangeCache);
        let mix = Mix::new(40.0, 30.0, 10.0, 20.0);
        let a = run_static(&cfg, mix, 1500).unwrap();
        let b = run_static(&cfg, mix, 1500).unwrap();
        assert_eq!(a.total_sst_reads, b.total_sst_reads);
        let ha: Vec<f64> = a.windows.iter().map(|w| w.hit_rate).collect();
        let hb: Vec<f64> = b.windows.iter().map(|w| w.hit_rate).collect();
        assert_eq!(ha, hb);
    }

    #[test]
    fn dynamic_schedule_transitions_phases() {
        let cfg = quick_cfg(Strategy::RocksDbBlock);
        let schedule = paper_dynamic_schedule(400);
        let r = run_schedule(&cfg, &schedule).unwrap();
        assert_eq!(r.total_ops, 2400);
        let phases: Vec<&str> = r.windows.iter().map(|w| w.phase.as_str()).collect();
        assert!(phases.contains(&"A") && phases.contains(&"F"));
    }

    #[test]
    fn multiclient_run_completes_and_scales() {
        let mut cfg = quick_cfg(Strategy::AdCache);
        cfg.shards = 4;
        let qps = run_multiclient(&cfg, Mix::new(50.0, 25.0, 0.0, 25.0), 4, 500).unwrap();
        assert_eq!(qps.len(), 4);
        assert!(qps.iter().all(|&q| q > 0.0));
    }

    #[test]
    fn latency_histogram_covers_every_op() {
        let cfg = quick_cfg(Strategy::AdCache);
        let r = run_static(&cfg, Mix::new(60.0, 20.0, 0.0, 20.0), 2000).unwrap();
        assert_eq!(r.latency.count(), 2000);
        let (p50, p95, p99, max) = r.latency.summary();
        assert!(p50 > 0 && p50 <= p95 && p95 <= p99 && p99 <= max);
        // Cache hits make the median much cheaper than the tail.
        assert!(max >= p50, "{p50} {max}");
    }

    #[test]
    fn traced_run_dumps_trace_and_metrics() {
        let mut cfg = quick_cfg(Strategy::AdCache);
        let dir = std::env::temp_dir().join(format!("adcache-runner-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        cfg.trace_dir = Some(dir.clone());
        let r = run_static(&cfg, Mix::new(50.0, 25.0, 5.0, 20.0), 2000).unwrap();
        assert_eq!(r.total_ops, 2000);

        let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
        assert!(trace.contains("\"RunStart\""));
        assert!(
            trace.contains("\"ControllerDecision\""),
            "controller decisions must be journaled"
        );
        assert!(trace.contains("\"range_ratio\""));
        assert!(trace.contains("\"point_threshold\""));
        assert!(
            trace.contains("\"TrainStep\""),
            "online training must journal reward/td_error"
        );
        assert!(
            trace.contains("\"Admission\""),
            "admission verdicts must be journaled"
        );
        assert!(trace.contains("\"BoundaryResize\""));

        let metrics = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert!(metrics.contains("cache.block.hits"));
        assert!(metrics.contains("core.admission.accepts"));
        assert!(metrics.contains("op.latency_ns"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn untraced_run_writes_nothing_and_stays_disabled() {
        let cfg = quick_cfg(Strategy::AdCache);
        let db = prepare_db(&cfg).unwrap();
        let schedule = Schedule {
            phases: vec![adcache_workload::Phase {
                name: "static".into(),
                mix: Mix::new(100.0, 0.0, 0.0, 0.0),
                ops: 400,
            }],
        };
        run_schedule_on(&cfg, &schedule, &db).unwrap();
        assert!(
            !db.obs().is_enabled(),
            "no trace dir -> engine obs must stay disabled"
        );
    }

    #[test]
    fn fault_storm_run_degrades_gracefully() {
        use adcache_lsm::{FaultPlan, FaultStorage};

        let mut cfg = quick_cfg(Strategy::AdCache);
        cfg.continue_on_error = true;
        let inner = Arc::new(MemStorage::new());
        let faulty = Arc::new(FaultStorage::new(inner, 21, FaultPlan::none()));
        let db = prepare_db_with_storage(&cfg, faulty.clone()).unwrap();
        faulty.set_plan(FaultPlan::storm());
        let schedule = Schedule {
            phases: vec![adcache_workload::Phase {
                name: "storm".into(),
                mix: Mix::new(40.0, 25.0, 15.0, 20.0),
                ops: 2000,
            }],
        };
        let r = run_schedule_on(&cfg, &schedule, &db).unwrap();
        assert!(r.op_errors > 0, "the storm plan must actually bite");
        assert_eq!(
            r.nonfinite_repairs, 0,
            "fault storms must not poison controller inputs"
        );
        assert!(r.overall_hit_rate.is_finite());
        assert!(r.overall_qps.is_finite());
        for w in &r.windows {
            assert!(w.hit_rate.is_finite(), "window {} hit rate", w.index);
            if let Some(d) = &w.decision {
                assert!(d.range_ratio.is_finite() && (0.0..=1.0).contains(&d.range_ratio));
            }
        }
    }

    #[test]
    fn mean_helpers_slice_windows() {
        let cfg = quick_cfg(Strategy::RocksDbBlock);
        let r = run_static(&cfg, Mix::new(100.0, 0.0, 0.0, 0.0), 1000).unwrap();
        let all = r.mean_hit_rate(0, r.windows.len());
        assert!((0.0 - 1.0..=1.0).contains(&all));
        assert_eq!(
            r.mean_hit_rate(100, 200),
            0.0,
            "out of range slices are empty"
        );
        assert!(r.mean_qps(0, 5) > 0.0);
    }
}
