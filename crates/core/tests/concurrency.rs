//! Multi-threaded engine smoke/stress tests.
//!
//! The serving layer hammers one shared [`CachedDb`] from many OS threads,
//! so engine concurrency must hold up outside the single-threaded harness:
//! results stay correct under interleaved get/put/scan traffic, and the
//! shared [`Counters`] never lose an increment (totals equal the sum of
//! what each thread actually issued).

use adcache_core::{CachedDb, EngineConfig, Strategy};
use adcache_lsm::{MemStorage, Options};
use adcache_workload::{render_key, Mix, WorkloadConfig, WorkloadGen};
use bytes::Bytes;
use std::sync::atomic::Ordering;
use std::sync::Arc;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 2_500;

/// Per-thread tallies of what was actually issued.
#[derive(Default)]
struct Issued {
    points: u64,
    scans: u64,
    scan_len_sum: u64,
    writes: u64,
    hits_or_misses_ok: u64,
}

fn build_shared(strategy: Strategy) -> Arc<CachedDb> {
    let db = CachedDb::new(
        Options::small(),
        Arc::new(MemStorage::new()),
        EngineConfig::new(strategy, 1 << 20),
    )
    .unwrap();
    for i in 0..4_000u64 {
        db.load(render_key(i), Bytes::from(format!("seed-{i:05}")))
            .unwrap();
    }
    db.db().flush().unwrap();
    while db.db().maybe_compact_once().unwrap() {}
    Arc::new(db)
}

/// 8 threads of mixed traffic against one engine: every operation must
/// succeed, and the engine's shared counters must equal the per-thread
/// sums exactly — a lost or double-counted increment here would silently
/// corrupt every window summary the controller trains on.
#[test]
fn eight_threads_of_mixed_traffic_keep_counters_consistent() {
    for strategy in [Strategy::AdCache, Strategy::RocksDbBlock] {
        let db = build_shared(strategy);
        let mix = Mix::new(40.0, 25.0, 5.0, 30.0);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    let mut gen = WorkloadGen::new(WorkloadConfig {
                        num_keys: 4_000,
                        value_size: 64,
                        seed: 0xC0FFEE + t as u64,
                        ..Default::default()
                    });
                    let mut issued = Issued::default();
                    for _ in 0..OPS_PER_THREAD {
                        match gen.next_op(&mix) {
                            adcache_workload::Operation::Get { key } => {
                                db.get(&key).unwrap();
                                issued.points += 1;
                            }
                            adcache_workload::Operation::Scan { from, len } => {
                                let page = db.scan(&from, len).unwrap();
                                assert!(page.len() <= len);
                                // Returned keys are sorted and start at or
                                // after the requested origin.
                                for w in page.windows(2) {
                                    assert!(w[0].0 < w[1].0, "scan out of order");
                                }
                                if let Some((k, _)) = page.first() {
                                    assert!(*k >= from);
                                }
                                issued.scans += 1;
                                issued.scan_len_sum += len as u64;
                            }
                            adcache_workload::Operation::Put { key, value } => {
                                db.put(key, value).unwrap();
                                issued.writes += 1;
                            }
                            adcache_workload::Operation::Delete { key } => {
                                db.delete(key).unwrap();
                                issued.writes += 1;
                            }
                        }
                        issued.hits_or_misses_ok += 1;
                    }
                    issued
                })
            })
            .collect();

        let mut total = Issued::default();
        for h in handles {
            let issued = h.join().expect("worker thread panicked");
            total.points += issued.points;
            total.scans += issued.scans;
            total.scan_len_sum += issued.scan_len_sum;
            total.writes += issued.writes;
            total.hits_or_misses_ok += issued.hits_or_misses_ok;
        }
        assert_eq!(total.hits_or_misses_ok, THREADS as u64 * OPS_PER_THREAD);

        let c = db.counters();
        assert_eq!(
            c.points.load(Ordering::Relaxed),
            total.points,
            "{strategy:?}: point counter diverged from per-thread sums"
        );
        assert_eq!(
            c.scans.load(Ordering::Relaxed),
            total.scans,
            "{strategy:?}: scan counter diverged"
        );
        assert_eq!(
            c.scan_len_sum.load(Ordering::Relaxed),
            total.scan_len_sum,
            "{strategy:?}: scan length sum diverged"
        );
        assert_eq!(
            c.writes.load(Ordering::Relaxed),
            total.writes,
            "{strategy:?}: write counter diverged"
        );
        assert_eq!(c.total_ops(), THREADS as u64 * OPS_PER_THREAD);

        // Every query either hit a result cache or consulted the engine —
        // the disjoint outcome counters must partition the reads.
        let reads = total.points + total.scans;
        let outcomes = c.range_hits.load(Ordering::Relaxed)
            + c.kv_hits.load(Ordering::Relaxed)
            + c.cache_misses.load(Ordering::Relaxed);
        assert_eq!(
            outcomes, reads,
            "{strategy:?}: hit/miss outcomes must partition the reads"
        );

        // The report rolls up the same counters.
        let report = db.stats_report();
        assert_eq!(report.points, total.points);
        assert_eq!(report.scans, total.scans);
        assert_eq!(report.writes, total.writes);
        assert_eq!(report.strategy, strategy.name());
    }
}

/// Writers and readers race on the same keys; reads must always see either
/// the seed value or some thread's overwrite — never garbage, never a
/// phantom deletion.
#[test]
fn racing_overwrites_never_yield_torn_values() {
    let db = build_shared(Strategy::AdCache);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                // All threads fight over the same 64 keys.
                for i in 0..1_500u64 {
                    let k = render_key(i % 64);
                    if t % 2 == 0 {
                        db.put(k, Bytes::from(format!("w{t}-{i:05}"))).unwrap();
                    } else {
                        if let Some(v) = db.get(&k).unwrap() {
                            let s = std::str::from_utf8(&v).expect("utf8 value");
                            assert!(
                                s.starts_with("seed-") || s.starts_with('w'),
                                "torn value {s:?}"
                            );
                        } else {
                            panic!("key {i} vanished without a delete");
                        }
                        let page = db.scan(&render_key(0), 16).unwrap();
                        assert!(!page.is_empty());
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }
}
