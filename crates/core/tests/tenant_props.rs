//! Property tests for the tenant partition layer.
//!
//! Two invariants from the multi-tenant design:
//!
//! - **Share soundness**: whatever sequence of tenant registrations,
//!   arbitrary (even degenerate) share requests, and learned rebalance
//!   steps occurs, the shares in force always sum to 1 and every tenant
//!   keeps the guaranteed minimum.
//! - **Capacity isolation**: partitions are shared-nothing, so no read
//!   issued by one tenant can evict another tenant's resident entries.
//!   Writes are deliberately out of scope: write coherence invalidates
//!   the written key in every partition and LSM flush/compaction drops
//!   shared blocks — both correctness-driven, neither eviction pressure
//!   (the drill for write-heavy neighbors is `adcache tenantcheck`).

use adcache_core::{CachedDb, EngineConfig, Strategy as CacheStrategy, TenantId};
use adcache_lsm::{MemStorage, Options};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

fn build(min_share: f64) -> Arc<CachedDb> {
    let mut cfg = EngineConfig::new(CacheStrategy::AdCache, 128 << 10);
    cfg.min_tenant_share = min_share;
    cfg.expected_keys = 4096;
    Arc::new(CachedDb::new(Options::small(), Arc::new(MemStorage::new()), cfg).unwrap())
}

/// Keys are prefixed per tenant so no two tenants ever touch the same
/// key: cross-partition write coherence can never fire by accident.
fn tkey(tenant: TenantId, k: u16) -> Bytes {
    Bytes::from(format!("t{tenant:02}/{k:04}"))
}

#[derive(Debug, Clone)]
enum ShareOp {
    /// Register a tenant (idempotent), resetting to the equal split.
    Register(u8),
    /// Request an arbitrary — possibly zero or unregistered — split.
    Want(Vec<(u8, f64)>),
    /// One learned-arbiter step over the current activity windows.
    Rebalance,
}

fn share_op() -> impl Strategy<Value = ShareOp> {
    prop_oneof![
        3 => (1u8..8).prop_map(ShareOp::Register),
        3 => proptest::collection::vec((0u8..8, 0.0f64..8.0), 0..6).prop_map(ShareOp::Want),
        2 => Just(ShareOp::Rebalance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn shares_sum_to_one_and_every_tenant_keeps_the_minimum(
        min_share in 0.0f64..0.6,
        ops in proptest::collection::vec(share_op(), 1..32),
    ) {
        let db = build(min_share);
        for op in ops {
            match op {
                ShareOp::Register(t) => db.register_tenant(t as TenantId),
                ShareOp::Want(want) => {
                    let want: Vec<(TenantId, f64)> =
                        want.iter().map(|&(t, w)| (t as TenantId, w)).collect();
                    db.set_tenant_shares(&want);
                }
                ShareOp::Rebalance => {
                    db.rebalance_tenants();
                }
            }
            let reports = db.tenant_reports();
            let sum: f64 = reports.iter().map(|r| r.share).sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "shares sum to {sum}, not 1");
            // The configured floor is clamped to the feasible 1/n.
            let floor = min_share.min(1.0 / reports.len() as f64) - 1e-9;
            for r in &reports {
                prop_assert!(
                    r.share >= floor,
                    "tenant {} share {} below guaranteed minimum {floor}",
                    r.tenant,
                    r.share
                );
            }
        }
    }

    #[test]
    fn no_read_by_one_tenant_evicts_another_tenants_residency(
        ops in proptest::collection::vec((1u8..4, 0u16..64, 1u8..8), 1..160),
        seed_per_tenant in 8u16..48,
    ) {
        let db = build(0.1);
        let tenants: [TenantId; 3] = [1, 2, 3];
        for &t in &tenants {
            db.register_tenant(t);
        }
        for &t in &tenants {
            for k in 0..seed_per_tenant {
                db.load(tkey(t, k), Bytes::from(vec![t as u8; 64])).unwrap();
            }
        }
        db.db().flush().unwrap();
        // Warm every tenant's partition from its own key range.
        for &t in &tenants {
            for k in 0..seed_per_tenant {
                db.get_for(t, &tkey(t, k)).unwrap();
                db.get_for(t, &tkey(t, k)).unwrap();
            }
        }
        let resident = |t: TenantId| {
            db.tenant_reports()
                .iter()
                .find(|r| r.tenant == t)
                .map(|r| r.used_bytes)
                .unwrap_or(0)
        };
        let mut floor: std::collections::BTreeMap<TenantId, u64> =
            tenants.iter().map(|&t| (t, resident(t))).collect();
        for (t, k, len) in ops {
            let actor = tenants[(t as usize - 1) % tenants.len()];
            // Reads far past the warm set too: misses exercise admission
            // and eviction inside the actor's own partition.
            if len % 2 == 0 {
                db.get_for(actor, &tkey(actor, k)).unwrap();
            } else {
                db.scan_for(actor, &tkey(actor, k), len as usize).unwrap();
            }
            for &other in &tenants {
                if other == actor {
                    // The actor may evict (or grow) its own residency.
                    floor.insert(other, resident(other));
                    continue;
                }
                let now = resident(other);
                prop_assert!(
                    now >= floor[&other],
                    "tenant {actor} read shrank tenant {other}: {} -> {now} bytes",
                    floor[&other]
                );
                floor.insert(other, now);
            }
        }
    }
}
