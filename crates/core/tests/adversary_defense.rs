//! Cross-crate adversarial efficacy checks: the attack generators from
//! `adcache-workload` must genuinely threaten the admission sketch from
//! `adcache-cache` (otherwise the robustness drills measure nothing), and
//! the epoch re-salt defense must genuinely disarm them.

use adcache_cache::CountMinSketch;
use adcache_core::{CacheDecision, CachedDb, EngineConfig, Strategy};
use adcache_lsm::{MemStorage, Options};
use adcache_workload::zipf::fnv1a64;
use adcache_workload::{parse_key, AdversaryConfig, AdversaryGen, AdversaryKind, AttackPlan};
use adcache_workload::{render_key, Operation};
use bytes::Bytes;
use std::sync::Arc;

/// Replays the collision plan's GET phase against a sketch: round-robin
/// increments over the mined keys, exactly like the wire attack drives
/// the engine's miss path.
fn hammer(sketch: &mut CountMinSketch, ids: &[u64], rounds: usize) {
    for _ in 0..rounds {
        for &id in ids {
            sketch.increment(&render_key(id));
        }
    }
}

/// The mined collision set inflates the victim's frequency estimate far
/// past what any honest key can sustain under saturation decay — without
/// the attacker ever touching the victim. An epoch re-salt then breaks
/// every precomputed collision: replaying the identical attack against
/// the re-salted sketch leaves the victim's estimate at honest levels.
#[test]
fn collision_plan_inflates_victim_until_resalt() {
    let num_keys = 1_000u64;
    let mut cfg = AdversaryConfig::new(AdversaryKind::SketchCollision, num_keys, 42);
    // A deeper mined set than the wire default: this test measures the raw
    // collision mechanism, so pile enough colliders per row that the
    // victim's estimate visibly rides above the saturation cap.
    cfg.collisions_per_row = 8;
    let plan = AttackPlan::build(&cfg);
    assert!(!plan.is_empty(), "mining must succeed at this width");

    let mut sketch = CountMinSketch::for_keys(num_keys as usize);

    // The victim is the workload's hottest key (scrambled rank 0); the
    // attacker never sends it. With saturation 8, an honest key's
    // estimate can never exceed 8 between decays — riding above that is
    // the collision signature.
    let victim = fnv1a64(0) % num_keys;
    assert!(
        !plan.collision_ids.contains(&victim),
        "collision keys sit outside the legit space"
    );
    hammer(&mut sketch, &plan.collision_ids, 100);
    let inflated = sketch.estimate(&render_key(victim));
    assert!(
        inflated > 8,
        "attack must push the untouched victim past the saturation cap, got {inflated}"
    );

    // Defense: re-salt the rows. The same precomputed ids now scatter
    // across unrelated buckets, so the victim's estimate stays honest.
    sketch.reset(0x0D15_A53D);
    hammer(&mut sketch, &plan.collision_ids, 100);
    let post = sketch.estimate(&render_key(victim));
    assert!(
        post <= 8,
        "re-salt must break precomputed collisions, got {post}"
    );
    assert!(post < inflated);
}

/// The generator's full wire stream (PUT seeding, then Delete→Put→Get
/// hammer rounds) decodes back to the mined ids, so what travels over the
/// protocol is the same attack the sketch test above measures.
#[test]
fn collision_stream_replays_the_mined_plan() {
    let cfg = AdversaryConfig::new(AdversaryKind::SketchCollision, 1_000, 9);
    let plan = AttackPlan::build(&cfg);
    let ids = plan.collision_ids.clone();
    let mut gen = AdversaryGen::new(cfg, plan);
    for _ in 0..ids.len() * 4 {
        let id = match gen.next_op() {
            Operation::Put { key, .. } | Operation::Get { key } | Operation::Delete { key } => {
                parse_key(&key).expect("attack keys use the workload encoding")
            }
            other => panic!("unexpected op {other:?}"),
        };
        assert!(ids.contains(&id), "stream strays from the mined plan");
    }
}

/// Drives an attack stream straight into a [`CachedDb`] and returns the
/// engine's stats plus the guard's reset count.
fn drive_attack(kind: AdversaryKind, ops: u64) -> (adcache_core::EngineStatsReport, u64) {
    let keys = 4_000u64;
    let mut cfg = EngineConfig::new(Strategy::AdCache, 256 << 10);
    cfg.expected_keys = keys as usize;
    cfg.sketch_guard = true;
    let db = CachedDb::new(Options::small(), Arc::new(MemStorage::new()), cfg).unwrap();
    db.apply_decision(&CacheDecision {
        point_threshold: 0.0005,
        ..Default::default()
    });
    for k in 0..keys {
        db.load(render_key(k), Bytes::from(vec![0x5A; 100]))
            .unwrap();
    }
    db.db().flush().unwrap();
    let acfg = AdversaryConfig::new(kind, keys, 7);
    let plan = AttackPlan::build(&acfg);
    let mut gen = AdversaryGen::new(acfg, plan);
    for _ in 0..ops {
        match gen.next_op() {
            Operation::Get { key } => {
                let _ = db.get(&key);
            }
            Operation::Put { key, value } => db.put(key, value).unwrap(),
            Operation::Delete { key } => db.delete(key).unwrap(),
            Operation::Scan { from, len } => {
                let _ = db.scan(&from, len);
            }
        }
    }
    (db.stats_report(), db.sketch_resets())
}

/// The churn rotation's byte footprint overflows the cache, so its GETs
/// must keep *missing* — the attack only works (and the drill only
/// measures something) if the cache cannot absorb the rotation.
#[test]
fn churn_rotation_defeats_cache_absorption() {
    let ops = 30_000;
    let (stats, _) = drive_attack(AdversaryKind::KeyChurn, ops);
    // One GET per Delete→Put→Get round; the warm-up admits each key once,
    // after which eviction must keep forcing re-misses.
    assert!(
        stats.cache_misses >= ops / 6,
        "churn GETs must keep missing, got {} misses over {} ops",
        stats.cache_misses,
        ops
    );
}

/// The collision rounds concentrate sketch increments hard enough to trip
/// the decay-flood guard: the defended engine re-salts at least once.
#[test]
fn collision_rounds_trip_the_sketch_guard_through_the_engine() {
    let (stats, resets) = drive_attack(AdversaryKind::SketchCollision, 60_000);
    assert!(
        stats.cache_misses >= 10_000,
        "collision GETs must keep missing, got {}",
        stats.cache_misses
    );
    assert!(resets >= 1, "collision rounds must trip the sketch guard");
}
