//! Property tests for the cache substrate.
//!
//! The central soundness property: whatever sequence of scans, writes,
//! deletes, capacity changes and evictions occurs, the range cache must
//! never return an answer that disagrees with the ground-truth database
//! state. Misses are always allowed; wrong hits never are.

use adcache_cache::{PointLookup, RangeCache, RangeLookup};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::BTreeMap;

type Db = BTreeMap<Bytes, Bytes>;

fn key(k: u16) -> Bytes {
    Bytes::from(format!("k{k:05}"))
}

fn scan_db(db: &Db, from: &Bytes, n: usize) -> Vec<(Bytes, Bytes)> {
    db.range(from.clone()..)
        .take(n)
        .map(|(a, b)| (a.clone(), b.clone()))
        .collect()
}

#[derive(Debug, Clone)]
enum Op {
    /// Run a scan against the DB and admit a prefix into the cache.
    ScanAndAdmit(u16, u8, u8),
    /// Query the cache for a range and check against ground truth.
    CheckRange(u16, u8),
    /// Query the cache for a point and check against ground truth.
    CheckPoint(u16),
    /// Write through: mutate DB and notify the cache.
    Write(u16, u8),
    /// Delete through: mutate DB and notify the cache.
    Delete(u16),
    /// Shrink or grow the cache budget.
    Resize(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u16>(), 1u8..40, any::<u8>()).prop_map(|(k, n, a)| Op::ScanAndAdmit(k % 300, n, a)),
        3 => (any::<u16>(), 1u8..40).prop_map(|(k, n)| Op::CheckRange(k % 300, n)),
        3 => any::<u16>().prop_map(|k| Op::CheckPoint(k % 300)),
        2 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Write(k % 300, v)),
        1 => any::<u16>().prop_map(|k| Op::Delete(k % 300)),
        1 => (1000u32..100_000).prop_map(Op::Resize),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn range_cache_never_serves_stale_data(
        seed_keys in proptest::collection::btree_set(any::<u16>(), 0..200),
        ops in proptest::collection::vec(op_strategy(), 1..300),
        shards in 1usize..4,
    ) {
        // Ground truth DB.
        let mut db: Db = seed_keys
            .into_iter()
            .map(|k| (key(k % 300), Bytes::from(format!("v{k}"))))
            .collect();

        let boundaries: Vec<Bytes> = match shards {
            1 => vec![],
            2 => vec![key(150)],
            _ => vec![key(100), key(200)],
        };
        let cache = RangeCache::with_shards(
            50_000,
            boundaries,
            Box::new(|| Box::new(adcache_cache::LruPolicy::new())),
        );

        for op in ops {
            match op {
                Op::ScanAndAdmit(k, n, admit_frac) => {
                    let from = key(k);
                    let results = scan_db(&db, &from, n as usize);
                    let admitted = (results.len() * (admit_frac as usize % 101)) / 100;
                    cache.insert_scan(&from, &results, admitted.max(if results.is_empty() { 0 } else { 1 }));
                }
                Op::CheckRange(k, n) => {
                    let from = key(k);
                    if let RangeLookup::Hit(got) = cache.get_range(&from, n as usize) {
                        let want = scan_db(&db, &from, n as usize);
                        // A hit must return exactly the ground truth prefix.
                        prop_assert_eq!(&got, &want, "range hit diverged at k={} n={}", k, n);
                    }
                }
                Op::CheckPoint(k) => {
                    let probe = key(k);
                    match cache.get_point(&probe) {
                        PointLookup::Hit(v) => {
                            prop_assert_eq!(Some(&v), db.get(&probe), "stale point hit k={}", k);
                        }
                        PointLookup::NegativeHit => {
                            prop_assert!(!db.contains_key(&probe), "false negative-hit k={}", k);
                        }
                        PointLookup::Miss => {}
                    }
                }
                Op::Write(k, v) => {
                    let val = Bytes::from(format!("w{v}"));
                    db.insert(key(k), val.clone());
                    cache.on_write(&key(k), Some(&val));
                }
                Op::Delete(k) => {
                    db.remove(&key(k));
                    cache.on_write(&key(k), None);
                }
                Op::Resize(cap) => {
                    cache.set_capacity(cap as usize);
                }
            }
        }

        // Exhaustive final check over the whole key space.
        for k in 0..300u16 {
            let probe = key(k);
            match cache.get_point(&probe) {
                PointLookup::Hit(v) => prop_assert_eq!(Some(&v), db.get(&probe)),
                PointLookup::NegativeHit => prop_assert!(!db.contains_key(&probe)),
                PointLookup::Miss => {}
            }
            if let RangeLookup::Hit(got) = cache.get_range(&probe, 10) {
                prop_assert_eq!(got, scan_db(&db, &probe, 10));
            }
        }
    }

    #[test]
    fn charged_cache_capacity_invariant(
        ops in proptest::collection::vec((any::<u16>(), 1usize..200, any::<bool>()), 1..300),
        cap in 100usize..2000,
    ) {
        use adcache_cache::{ChargedCache, LfuPolicy};
        let mut c: ChargedCache<u16, u64> = ChargedCache::new(cap, Box::new(LfuPolicy::new()));
        for (k, charge, is_get) in ops {
            if is_get {
                c.get(&k);
            } else {
                c.insert(k, k as u64, charge);
            }
            prop_assert!(c.used() <= c.capacity(), "used {} > cap {}", c.used(), c.capacity());
        }
        let stats = c.stats();
        prop_assert!(stats.inserts >= c.len() as u64);
    }

    /// Partial scan admission never admits more than the scan returned,
    /// never truncates a scan short enough to fit under `a`, and is
    /// monotone: longer scans and larger `b` admit at least as much.
    #[test]
    fn scan_admission_is_bounded_and_monotone(
        a in 0usize..64,
        b in 0.0f64..1.5,
        b2_bump in 0.0f64..1.0,
        l in 0usize..512,
    ) {
        use adcache_cache::ScanAdmission;
        let policy = ScanAdmission::new(a, b);
        let got = policy.admitted_len(l);
        prop_assert!(got <= l, "admitted {} of a {}-entry scan", got, l);
        prop_assert!(got >= l.min(policy.a), "short scans admit whole");
        prop_assert!(
            policy.admitted_len(l + 1) >= got,
            "one more entry must never shrink the admitted prefix"
        );
        let greedier = ScanAdmission::new(a, b + b2_bump);
        prop_assert!(
            greedier.admitted_len(l) >= got,
            "larger b must admit at least as much"
        );
    }

    /// Frequency admission is monotone in the threshold: on the *same*
    /// key stream, everything a stricter policy admits, a looser policy
    /// admits too (the sketch state is identical, only the bar moves).
    #[test]
    fn point_admission_is_monotone_in_threshold(
        keys in proptest::collection::vec(any::<u16>(), 1..600),
        loose in 0.0f64..0.05,
        bump in 0.0f64..0.05,
    ) {
        use adcache_cache::{PointAdmission, SketchGuard};
        // Guard off: both sketches must evolve identically so the only
        // difference between the two policies is the threshold.
        let mut lo = PointAdmission::with_guard(1 << 10, loose, SketchGuard::off());
        let mut hi = PointAdmission::with_guard(1 << 10, loose + bump, SketchGuard::off());
        for k in &keys {
            let kb = k.to_le_bytes();
            let lo_admit = lo.admit(&kb);
            let hi_admit = hi.admit(&kb);
            prop_assert!(
                lo_admit || !hi_admit,
                "strict admitted a key the loose policy rejected"
            );
        }
        let (lo_in, lo_out) = lo.counters();
        let (hi_in, hi_out) = hi.counters();
        prop_assert!(lo_in >= hi_in);
        prop_assert_eq!(lo_in + lo_out, hi_in + hi_out);
        prop_assert_eq!(lo_in + lo_out, keys.len() as u64);
    }

    #[test]
    fn sketch_estimate_upper_bounds_truth(
        keys in proptest::collection::vec(any::<u8>(), 1..500,)
    ) {
        use adcache_cache::CountMinSketch;
        // Disable decay to test the pure CMS overcount property.
        let mut s = CountMinSketch::new(512, 4, u32::MAX - 1);
        let mut truth: BTreeMap<u8, u32> = BTreeMap::new();
        for k in keys {
            s.increment(&[k]);
            *truth.entry(k).or_insert(0) += 1;
        }
        for (k, count) in truth {
            prop_assert!(s.estimate(&[k]) >= count);
        }
    }
}

/// Reference-model check: `LruPolicy` must agree exactly with a simple
/// `VecDeque`-based LRU under arbitrary access traces.
mod lru_reference {
    use adcache_cache::{LruPolicy, Policy};
    use proptest::prelude::*;
    use std::collections::VecDeque;

    struct RefLru {
        order: VecDeque<u16>, // front = LRU
    }

    impl RefLru {
        fn touch(&mut self, k: u16) {
            if let Some(i) = self.order.iter().position(|&x| x == k) {
                self.order.remove(i);
            }
            self.order.push_back(k);
        }
    }

    proptest! {
        #[test]
        fn lru_matches_reference(ops in proptest::collection::vec((any::<u16>(), 0u8..3), 1..400)) {
            let mut policy = LruPolicy::new();
            let mut reference = RefLru { order: VecDeque::new() };
            for (k, action) in ops {
                let k = k % 32;
                let resident = reference.order.contains(&k);
                match action {
                    0 if !resident => {
                        policy.on_insert(&k);
                        reference.touch(k);
                    }
                    1 if resident => {
                        policy.on_hit(&k);
                        reference.touch(k);
                    }
                    2 if resident => {
                        let expect = reference.order.pop_front();
                        prop_assert_eq!(policy.victim(), expect);
                    }
                    _ => {}
                }
            }
            // Full drain agrees.
            while let Some(expect) = reference.order.pop_front() {
                prop_assert_eq!(policy.victim(), Some(expect));
            }
            prop_assert_eq!(policy.victim(), None);
        }
    }
}
