//! Least-recently-used eviction.

use super::Policy;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Classic LRU: the victim is the key whose last access is oldest.
///
/// Implemented as a monotonic-tick recency index (`BTreeMap<tick, K>` plus
/// `HashMap<K, tick>`): O(log n) per operation, no unsafe, deterministic.
pub struct LruPolicy<K> {
    by_tick: BTreeMap<u64, K>,
    ticks: HashMap<K, u64>,
    clock: u64,
}

impl<K: Clone + Eq + Hash> LruPolicy<K> {
    /// Creates an empty policy.
    pub fn new() -> Self {
        LruPolicy {
            by_tick: BTreeMap::new(),
            ticks: HashMap::new(),
            clock: 0,
        }
    }

    fn touch(&mut self, key: &K) {
        if let Some(old) = self.ticks.get(key).copied() {
            self.by_tick.remove(&old);
        }
        self.clock += 1;
        self.by_tick.insert(self.clock, key.clone());
        self.ticks.insert(key.clone(), self.clock);
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }
}

impl<K: Clone + Eq + Hash> Default for LruPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Eq + Hash + Send> Policy<K> for LruPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        self.touch(key);
    }

    fn on_hit(&mut self, key: &K) {
        self.touch(key);
    }

    fn victim(&mut self) -> Option<K> {
        let (&tick, key) = self.by_tick.iter().next()?;
        let key = key.clone();
        self.by_tick.remove(&tick);
        self.ticks.remove(&key);
        Some(key)
    }

    fn on_external_remove(&mut self, key: &K) {
        if let Some(tick) = self.ticks.remove(key) {
            self.by_tick.remove(&tick);
        }
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut p = LruPolicy::new();
        for k in [1u32, 2, 3] {
            p.on_insert(&k);
        }
        p.on_hit(&1); // order now: 2, 3, 1
        assert_eq!(p.victim(), Some(2));
        assert_eq!(p.victim(), Some(3));
        assert_eq!(p.victim(), Some(1));
        assert_eq!(p.victim(), None);
    }

    #[test]
    fn external_remove_drops_tracking() {
        let mut p = LruPolicy::new();
        p.on_insert(&1u32);
        p.on_insert(&2);
        p.on_external_remove(&1);
        assert_eq!(p.victim(), Some(2));
        assert_eq!(p.victim(), None);
        assert!(p.is_empty());
    }

    #[test]
    fn contract() {
        super::super::check_policy_contract(Box::new(LruPolicy::new()));
    }
}
