//! 2Q eviction (Johnson & Shasha, VLDB '94).
//!
//! A classic database buffer policy and a useful mid-point between LRU and
//! ARC: first-touch pages enter a small FIFO probation queue (`A1in`);
//! pages evicted from probation are remembered in a ghost queue (`A1out`);
//! only a re-access — either while still in probation or from the ghost —
//! promotes a page into the main LRU (`Am`). One-pass scans therefore flow
//! through `A1in` without displacing the hot working set in `Am`.

use super::Policy;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Where {
    A1In,
    Am,
}

/// 2Q policy state.
pub struct TwoQPolicy<K> {
    /// Probationary FIFO (first-touch keys), front = oldest.
    a1in: VecDeque<K>,
    /// Main LRU for re-accessed keys: tick-ordered.
    am: BTreeMap<u64, K>,
    am_ticks: HashMap<K, u64>,
    /// Ghosts of probation evictions.
    a1out: VecDeque<K>,
    a1out_set: HashMap<K, ()>,
    /// Residency index.
    resident: HashMap<K, Where>,
    clock: u64,
    /// Target share of residents kept in probation (the paper's `Kin`
    /// heuristic is ~25%).
    in_share: f64,
}

impl<K: Clone + Eq + Hash> TwoQPolicy<K> {
    /// Creates the policy with the classic 25% probation share.
    pub fn new() -> Self {
        Self::with_in_share(0.25)
    }

    /// Creates the policy with a custom probation share in `(0, 1)`.
    pub fn with_in_share(in_share: f64) -> Self {
        TwoQPolicy {
            a1in: VecDeque::new(),
            am: BTreeMap::new(),
            am_ticks: HashMap::new(),
            a1out: VecDeque::new(),
            a1out_set: HashMap::new(),
            resident: HashMap::new(),
            clock: 0,
            in_share: in_share.clamp(0.05, 0.95),
        }
    }

    fn promote_to_am(&mut self, key: &K) {
        self.clock += 1;
        self.am.insert(self.clock, key.clone());
        self.am_ticks.insert(key.clone(), self.clock);
        self.resident.insert(key.clone(), Where::Am);
    }

    fn trim_ghosts(&mut self) {
        let limit = self.resident.len().max(8);
        while self.a1out.len() > limit {
            if let Some(g) = self.a1out.pop_front() {
                self.a1out_set.remove(&g);
            }
        }
    }

    /// Number of resident keys tracked.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }
}

impl<K: Clone + Eq + Hash> Default for TwoQPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Eq + Hash + Send> Policy<K> for TwoQPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        debug_assert!(!self.resident.contains_key(key));
        if self.a1out_set.remove(key).is_some() {
            // Ghost hit: the key proved reuse across its probation eviction.
            if let Some(pos) = self.a1out.iter().position(|k| k == key) {
                self.a1out.remove(pos);
            }
            self.promote_to_am(key);
        } else {
            self.a1in.push_back(key.clone());
            self.resident.insert(key.clone(), Where::A1In);
        }
    }

    fn on_hit(&mut self, key: &K) {
        match self.resident.get(key) {
            Some(Where::A1In) => {
                // Reuse during probation: promote.
                if let Some(pos) = self.a1in.iter().position(|k| k == key) {
                    self.a1in.remove(pos);
                }
                self.promote_to_am(key);
            }
            Some(Where::Am) => {
                if let Some(old) = self.am_ticks.get(key).copied() {
                    self.am.remove(&old);
                }
                self.clock += 1;
                self.am.insert(self.clock, key.clone());
                self.am_ticks.insert(key.clone(), self.clock);
            }
            None => {}
        }
    }

    fn victim(&mut self) -> Option<K> {
        let total = self.resident.len();
        if total == 0 {
            return None;
        }
        let in_target = ((total as f64) * self.in_share).ceil() as usize;
        // Evict from probation when it exceeds its share (or Am is empty).
        let from_a1in = self.a1in.len() >= in_target.max(1) || self.am.is_empty();
        let key = if from_a1in {
            let k = self.a1in.pop_front()?;
            // Remember as ghost so reuse promotes on return.
            self.a1out.push_back(k.clone());
            self.a1out_set.insert(k.clone(), ());
            k
        } else {
            let (&tick, k) = self.am.iter().next()?;
            let k = k.clone();
            self.am.remove(&tick);
            self.am_ticks.remove(&k);
            k
        };
        self.resident.remove(&key);
        self.trim_ghosts();
        Some(key)
    }

    fn on_external_remove(&mut self, key: &K) {
        match self.resident.remove(key) {
            Some(Where::A1In) => {
                if let Some(pos) = self.a1in.iter().position(|k| k == key) {
                    self.a1in.remove(pos);
                }
            }
            Some(Where::Am) => {
                if let Some(t) = self.am_ticks.remove(key) {
                    self.am.remove(&t);
                }
            }
            None => {}
        }
    }

    fn name(&self) -> &'static str {
        "2q"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_probationary_and_fifo() {
        let mut p = TwoQPolicy::new();
        for k in [1u32, 2, 3, 4] {
            p.on_insert(&k);
        }
        // All in A1in; probation exceeds its share -> FIFO eviction order.
        assert_eq!(p.victim(), Some(1));
        assert_eq!(p.victim(), Some(2));
    }

    #[test]
    fn reuse_promotes_and_survives_scans() {
        let mut p = TwoQPolicy::new();
        p.on_insert(&100u32);
        p.on_hit(&100); // promoted to Am
        for k in 0..60u32 {
            p.on_insert(&k);
            while p.len() > 6 {
                let v = p.victim().unwrap();
                assert_ne!(v, 100, "hot key evicted by one-pass scan");
            }
        }
    }

    #[test]
    fn ghost_hit_promotes_on_reinsert() {
        let mut p = TwoQPolicy::new();
        for k in 0..6u32 {
            p.on_insert(&k);
        }
        let v = p.victim().unwrap(); // 0 goes to ghosts
        assert_eq!(v, 0);
        p.on_insert(&0); // ghost hit
                         // 0 is now in Am: scans through probation must not touch it soon.
        for k in 10..14u32 {
            p.on_insert(&k);
            let victim = p.victim().unwrap();
            assert_ne!(victim, 0, "ghost-promoted key evicted immediately");
        }
    }

    #[test]
    fn contract() {
        super::super::check_policy_contract(Box::new(TwoQPolicy::new()));
    }
}
