//! Eviction policies.
//!
//! Every cache container in this crate delegates victim selection to a
//! [`Policy`]. The trait is deliberately small: containers own the data and
//! the byte accounting; policies own only ordering metadata. This is what
//! lets the paper's baselines swap the Range Cache's LRU for LeCaR or
//! Cacheus without touching cache structure (Section 5.1).

mod arc;
mod cacheus;
mod clock;
mod fifo;
mod lecar;
mod lfu;
mod lru;
mod twoq;

pub use arc::ArcPolicy;
pub use cacheus::CacheusPolicy;
pub use clock::ClockPolicy;
pub use fifo::FifoPolicy;
pub use lecar::LeCaRPolicy;
pub use lfu::{LfuPolicy, TieBreak};
pub use lru::LruPolicy;
pub use twoq::TwoQPolicy;

use std::hash::Hash;

/// Victim-selection strategy for a cache holding keys of type `K`.
///
/// Call discipline (enforced by the containers):
/// - `on_insert` exactly once when a key enters the cache;
/// - `on_hit` on every access to a resident key;
/// - `victim` only while at least one key is resident; the returned key is
///   removed by the container (no separate notification);
/// - `on_external_remove` when a resident key is dropped for another reason
///   (compaction invalidation, resize, explicit delete).
pub trait Policy<K: Clone + Eq + Hash>: Send {
    /// A key was inserted into the cache.
    fn on_insert(&mut self, key: &K);
    /// A resident key was accessed.
    fn on_hit(&mut self, key: &K);
    /// Chooses the key to evict. Must return a currently resident key.
    fn victim(&mut self) -> Option<K>;
    /// A resident key was removed without going through `victim`.
    fn on_external_remove(&mut self, key: &K);
    /// Human-readable policy name for logs and experiment output.
    fn name(&self) -> &'static str;
}

/// Shared test-suite applied to every policy: residency bookkeeping must be
/// consistent regardless of the eviction order the policy chooses.
#[cfg(test)]
pub(crate) fn check_policy_contract(mut p: Box<dyn Policy<u32>>) {
    use std::collections::HashSet;
    let mut resident: HashSet<u32> = HashSet::new();
    let mut state = 7u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..2000u64 {
        match rand() % 10 {
            0..=4 => {
                let k = (rand() % 64) as u32;
                if !resident.contains(&k) {
                    p.on_insert(&k);
                    resident.insert(k);
                }
            }
            5..=6 => {
                let k = (rand() % 64) as u32;
                if resident.contains(&k) {
                    p.on_hit(&k);
                }
            }
            7..=8 => {
                if !resident.is_empty() {
                    let v = p.victim().unwrap_or_else(|| panic!("victim at step {i}"));
                    assert!(resident.remove(&v), "policy evicted non-resident {v}");
                }
            }
            _ => {
                let k = (rand() % 64) as u32;
                if resident.contains(&k) {
                    p.on_external_remove(&k);
                    resident.remove(&k);
                }
            }
        }
    }
    // Drain: every resident key must eventually be offered as a victim.
    while !resident.is_empty() {
        let v = p.victim().expect("drain victim");
        assert!(resident.remove(&v));
    }
    assert!(p.victim().is_none(), "victim on empty policy must be None");
}
