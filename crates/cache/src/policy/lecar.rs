//! LeCaR: learning cache replacement (Vietri et al., HotStorage '18).
//!
//! LeCaR maintains two expert policies — LRU and LFU — over the same
//! resident set, plus one ghost history per expert recording that expert's
//! past eviction decisions. On a miss whose key sits in expert X's history,
//! X is blamed: its weight decays multiplicatively by `e^(-λ·r)` where the
//! regret discount `r = d^(steps since eviction)` fades with time. Victims
//! are drawn from the expert sampled proportionally to the weights.
//!
//! The paper evaluates "Range Cache with LeCaR" as the representative naive
//! combination of ML eviction with an LSM cache structure; this module is
//! that expert mechanism, driven through the shared [`Policy`] trait.

use super::{LfuPolicy, LruPolicy, Policy};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

const LAMBDA: f64 = 0.45;
const DISCOUNT: f64 = 0.005;

/// LeCaR policy state.
pub struct LeCaRPolicy<K> {
    lru: LruPolicy<K>,
    lfu: LfuPolicy<K>,
    /// Ghost history of LRU's evictions: key -> eviction step.
    hist_lru: HashMap<K, u64>,
    hist_lru_order: VecDeque<K>,
    /// Ghost history of LFU's evictions.
    hist_lfu: HashMap<K, u64>,
    hist_lfu_order: VecDeque<K>,
    w_lru: f64,
    w_lfu: f64,
    step: u64,
    resident: usize,
    rng_state: u64,
}

impl<K: Clone + Eq + Hash> LeCaRPolicy<K> {
    /// Creates the policy with equal initial expert weights.
    pub fn new() -> Self {
        Self::with_seed(0xD1CE_5EED)
    }

    /// Deterministic construction for tests and reproducible experiments.
    pub fn with_seed(seed: u64) -> Self {
        LeCaRPolicy {
            lru: LruPolicy::new(),
            lfu: LfuPolicy::new(),
            hist_lru: HashMap::new(),
            hist_lru_order: VecDeque::new(),
            hist_lfu: HashMap::new(),
            hist_lfu_order: VecDeque::new(),
            w_lru: 0.5,
            w_lfu: 0.5,
            step: 0,
            resident: 0,
            rng_state: seed.max(1),
        }
    }

    fn rand_unit(&mut self) -> f64 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        (self.rng_state >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Current `(w_lru, w_lfu)` weights (always normalized).
    pub fn weights(&self) -> (f64, f64) {
        (self.w_lru, self.w_lfu)
    }

    fn penalize(&mut self, blame_lru: bool, evicted_at: u64) {
        let age = self.step.saturating_sub(evicted_at) as f64;
        // Regret fades the longer ago the mistaken eviction happened; the
        // exponent is normalized by the resident size as in the paper.
        let n = self.resident.max(1) as f64;
        let regret = DISCOUNT.powf(age / n);
        let factor = (LAMBDA * regret).exp();
        if blame_lru {
            self.w_lfu *= factor;
        } else {
            self.w_lru *= factor;
        }
        let total = self.w_lru + self.w_lfu;
        self.w_lru /= total;
        self.w_lfu /= total;
    }

    fn trim_history(&mut self) {
        let limit = self.resident.max(8);
        while self.hist_lru_order.len() > limit {
            if let Some(k) = self.hist_lru_order.pop_front() {
                self.hist_lru.remove(&k);
            }
        }
        while self.hist_lfu_order.len() > limit {
            if let Some(k) = self.hist_lfu_order.pop_front() {
                self.hist_lfu.remove(&k);
            }
        }
    }
}

impl<K: Clone + Eq + Hash> Default for LeCaRPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Eq + Hash + Send> Policy<K> for LeCaRPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        self.step += 1;
        // A miss on a key a specific expert evicted is that expert's regret.
        if let Some(at) = self.hist_lru.remove(key) {
            self.penalize(true, at);
        } else if let Some(at) = self.hist_lfu.remove(key) {
            self.penalize(false, at);
        }
        self.lru.on_insert(key);
        self.lfu.on_insert(key);
        self.resident += 1;
        self.trim_history();
    }

    fn on_hit(&mut self, key: &K) {
        self.step += 1;
        self.lru.on_hit(key);
        self.lfu.on_hit(key);
    }

    fn victim(&mut self) -> Option<K> {
        if self.resident == 0 {
            return None;
        }
        let use_lru = self.rand_unit() < self.w_lru;
        // Sample the winning expert's victim; remove it from both experts.
        let victim = if use_lru {
            self.lru.victim()
        } else {
            self.lfu.victim()
        }?;
        if use_lru {
            self.lfu.on_external_remove(&victim);
            self.hist_lru.insert(victim.clone(), self.step);
            self.hist_lru_order.push_back(victim.clone());
        } else {
            self.lru.on_external_remove(&victim);
            self.hist_lfu.insert(victim.clone(), self.step);
            self.hist_lfu_order.push_back(victim.clone());
        }
        self.resident -= 1;
        self.trim_history();
        Some(victim)
    }

    fn on_external_remove(&mut self, key: &K) {
        self.lru.on_external_remove(key);
        self.lfu.on_external_remove(key);
        self.resident = self.resident.saturating_sub(1);
    }

    fn name(&self) -> &'static str {
        "lecar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_start_equal_and_stay_normalized() {
        let p: LeCaRPolicy<u32> = LeCaRPolicy::new();
        let (a, b) = p.weights();
        assert_eq!(a, 0.5);
        assert_eq!(b, 0.5);
    }

    #[test]
    fn regret_shifts_weight_away_from_blamed_expert() {
        let mut p = LeCaRPolicy::with_seed(3);
        for k in 0..8u32 {
            p.on_insert(&k);
        }
        // Force evictions and find one from the LRU history, then re-insert
        // it: LRU is blamed, so w_lru must drop.
        let mut lru_victim = None;
        for _ in 0..6 {
            let v = p.victim().unwrap();
            if p.hist_lru.contains_key(&v) {
                lru_victim = Some(v);
                break;
            }
        }
        if let Some(v) = lru_victim {
            let (w_before, _) = p.weights();
            p.on_insert(&v);
            let (w_after, w_lfu_after) = p.weights();
            assert!(w_after < w_before, "LRU blamed: {w_before} -> {w_after}");
            assert!((w_after + w_lfu_after - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn victims_come_from_both_experts_over_time() {
        let mut p = LeCaRPolicy::with_seed(42);
        let mut lru_picks = 0;
        let mut lfu_picks = 0;
        for round in 0..200u32 {
            for k in 0..8 {
                let key = round * 100 + k;
                p.on_insert(&key);
                // Bias frequencies so the experts disagree.
                if k == 0 {
                    p.on_hit(&key);
                    p.on_hit(&key);
                }
            }
            for _ in 0..8 {
                let v = p.victim().unwrap();
                if p.hist_lru.contains_key(&v) {
                    lru_picks += 1;
                } else {
                    lfu_picks += 1;
                }
            }
        }
        assert!(
            lru_picks > 0 && lfu_picks > 0,
            "lru={lru_picks} lfu={lfu_picks}"
        );
    }

    #[test]
    fn contract() {
        super::super::check_policy_contract(Box::new(LeCaRPolicy::<u32>::new()));
    }
}
