//! Least-frequently-used eviction.

use super::Policy;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// How frequency ties are broken when choosing among equally cold keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Evict the least-recently-used of the tied keys (classic LFU).
    Lru,
    /// Evict the *most*-recently-inserted of the tied keys. This is the
    /// churn-resistant variant used by Cacheus's CR-LFU expert: under churn
    /// (many once-accessed keys cycling), keeping the older tied keys
    /// protects established residents from being displaced by the stream.
    Mru,
}

/// LFU with configurable tie-breaking.
///
/// Keys are indexed by `(frequency, tick)`; the victim is the minimal
/// frequency with the tie broken by recency per [`TieBreak`].
pub struct LfuPolicy<K> {
    by_priority: BTreeMap<(u64, u64), K>,
    meta: HashMap<K, (u64, u64)>,
    clock: u64,
    tie: TieBreak,
}

impl<K: Clone + Eq + Hash> LfuPolicy<K> {
    /// Classic LFU (LRU tie-break).
    pub fn new() -> Self {
        Self::with_tiebreak(TieBreak::Lru)
    }

    /// LFU with an explicit tie-break rule.
    pub fn with_tiebreak(tie: TieBreak) -> Self {
        LfuPolicy {
            by_priority: BTreeMap::new(),
            meta: HashMap::new(),
            clock: 0,
            tie,
        }
    }

    fn bump(&mut self, key: &K, start_freq: u64) {
        let freq = match self.meta.get(key).copied() {
            Some((f, t)) => {
                self.by_priority.remove(&(f, t));
                f + 1
            }
            None => start_freq,
        };
        self.clock += 1;
        let prio = (freq, self.clock);
        self.by_priority.insert(prio, key.clone());
        self.meta.insert(key.clone(), prio);
    }

    /// Current frequency estimate of a tracked key.
    pub fn frequency(&self, key: &K) -> Option<u64> {
        self.meta.get(key).map(|(f, _)| *f)
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }
}

impl<K: Clone + Eq + Hash> Default for LfuPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Eq + Hash + Send> Policy<K> for LfuPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        self.bump(key, 1);
    }

    fn on_hit(&mut self, key: &K) {
        self.bump(key, 1);
    }

    fn victim(&mut self) -> Option<K> {
        let min_freq = self.by_priority.keys().next()?.0;
        let key = match self.tie {
            TieBreak::Lru => {
                let (&prio, k) = self.by_priority.range((min_freq, 0)..).next()?;
                let k = k.clone();
                self.by_priority.remove(&prio);
                k
            }
            TieBreak::Mru => {
                let (&prio, k) = self
                    .by_priority
                    .range((min_freq, 0)..=(min_freq, u64::MAX))
                    .next_back()?;
                let k = k.clone();
                self.by_priority.remove(&prio);
                k
            }
        };
        self.meta.remove(&key);
        Some(key)
    }

    fn on_external_remove(&mut self, key: &K) {
        if let Some(prio) = self.meta.remove(key) {
            self.by_priority.remove(&prio);
        }
    }

    fn name(&self) -> &'static str {
        match self.tie {
            TieBreak::Lru => "lfu",
            TieBreak::Mru => "cr-lfu",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_frequent() {
        let mut p = LfuPolicy::new();
        for k in [1u32, 2, 3] {
            p.on_insert(&k);
        }
        p.on_hit(&1);
        p.on_hit(&1);
        p.on_hit(&2);
        // freq: 1 -> 3, 2 -> 2, 3 -> 1
        assert_eq!(p.victim(), Some(3));
        assert_eq!(p.victim(), Some(2));
        assert_eq!(p.victim(), Some(1));
        assert_eq!(p.victim(), None);
    }

    #[test]
    fn lru_tiebreak_prefers_oldest() {
        let mut p = LfuPolicy::new();
        p.on_insert(&1u32);
        p.on_insert(&2);
        assert_eq!(p.victim(), Some(1));
    }

    #[test]
    fn mru_tiebreak_prefers_newest() {
        let mut p = LfuPolicy::with_tiebreak(TieBreak::Mru);
        p.on_insert(&1u32);
        p.on_insert(&2);
        assert_eq!(p.victim(), Some(2), "CR-LFU keeps the older tied key");
    }

    #[test]
    fn frequency_tracking() {
        let mut p = LfuPolicy::new();
        p.on_insert(&7u32);
        assert_eq!(p.frequency(&7), Some(1));
        p.on_hit(&7);
        assert_eq!(p.frequency(&7), Some(2));
        p.on_external_remove(&7);
        assert_eq!(p.frequency(&7), None);
        assert!(p.is_empty());
    }

    #[test]
    fn contract_lru_tiebreak() {
        super::super::check_policy_contract(Box::new(LfuPolicy::new()));
    }

    #[test]
    fn contract_mru_tiebreak() {
        super::super::check_policy_contract(Box::new(LfuPolicy::with_tiebreak(TieBreak::Mru)));
    }
}
