//! First-in-first-out eviction.

use super::Policy;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// FIFO: the victim is the key inserted earliest; hits do not reorder.
///
/// Included as a cheap baseline and as a building block for experiments on
/// scan-dominated workloads, where FIFO and LRU behave identically.
pub struct FifoPolicy<K> {
    by_arrival: BTreeMap<u64, K>,
    arrivals: HashMap<K, u64>,
    clock: u64,
}

impl<K: Clone + Eq + Hash> FifoPolicy<K> {
    /// Creates an empty policy.
    pub fn new() -> Self {
        FifoPolicy {
            by_arrival: BTreeMap::new(),
            arrivals: HashMap::new(),
            clock: 0,
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

impl<K: Clone + Eq + Hash> Default for FifoPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Eq + Hash + Send> Policy<K> for FifoPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        self.clock += 1;
        self.by_arrival.insert(self.clock, key.clone());
        self.arrivals.insert(key.clone(), self.clock);
    }

    fn on_hit(&mut self, _key: &K) {}

    fn victim(&mut self) -> Option<K> {
        let (&tick, key) = self.by_arrival.iter().next()?;
        let key = key.clone();
        self.by_arrival.remove(&tick);
        self.arrivals.remove(&key);
        Some(key)
    }

    fn on_external_remove(&mut self, key: &K) {
        if let Some(tick) = self.arrivals.remove(key) {
            self.by_arrival.remove(&tick);
        }
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_arrival_order_despite_hits() {
        let mut p = FifoPolicy::new();
        for k in [1u32, 2, 3] {
            p.on_insert(&k);
        }
        p.on_hit(&1);
        p.on_hit(&1);
        assert_eq!(p.victim(), Some(1));
        assert_eq!(p.victim(), Some(2));
        assert_eq!(p.victim(), Some(3));
        assert_eq!(p.victim(), None);
    }

    #[test]
    fn contract() {
        super::super::check_policy_contract(Box::new(FifoPolicy::new()));
    }
}
