//! CLOCK (second-chance) eviction.
//!
//! RocksDB offers a CLOCK-based block cache as its lock-friendlier
//! alternative to LRU (paper Section 2.2 mentions both). Entries sit in a
//! circular buffer with a reference bit; the hand sweeps, clearing set
//! bits and evicting the first unset one — an O(1)-amortized LRU
//! approximation.

use super::Policy;
use std::collections::HashMap;
use std::hash::Hash;

struct Slot<K> {
    key: K,
    referenced: bool,
}

/// CLOCK policy state.
pub struct ClockPolicy<K> {
    /// Circular buffer; `None` slots are free (from external removals).
    slots: Vec<Option<Slot<K>>>,
    /// Key -> slot index.
    index: HashMap<K, usize>,
    /// Sweep hand.
    hand: usize,
    /// Recycled slot indices.
    free: Vec<usize>,
}

impl<K: Clone + Eq + Hash> ClockPolicy<K> {
    /// Creates an empty policy.
    pub fn new() -> Self {
        ClockPolicy {
            slots: Vec::new(),
            index: HashMap::new(),
            hand: 0,
            free: Vec::new(),
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

impl<K: Clone + Eq + Hash> Default for ClockPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Eq + Hash + Send> Policy<K> for ClockPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        debug_assert!(!self.index.contains_key(key));
        let slot = Slot {
            key: key.clone(),
            referenced: false,
        };
        let idx = if let Some(i) = self.free.pop() {
            self.slots[i] = Some(slot);
            i
        } else {
            self.slots.push(Some(slot));
            self.slots.len() - 1
        };
        self.index.insert(key.clone(), idx);
    }

    fn on_hit(&mut self, key: &K) {
        if let Some(&i) = self.index.get(key) {
            if let Some(slot) = self.slots[i].as_mut() {
                slot.referenced = true;
            }
        }
    }

    fn victim(&mut self) -> Option<K> {
        if self.index.is_empty() {
            return None;
        }
        // At most two sweeps: the first clears bits, the second must find
        // an unreferenced slot.
        for _ in 0..(2 * self.slots.len()) {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let Some(slot) = self.slots[i].as_mut() else {
                continue;
            };
            if slot.referenced {
                slot.referenced = false;
            } else {
                let key = slot.key.clone();
                self.slots[i] = None;
                self.free.push(i);
                self.index.remove(&key);
                return Some(key);
            }
        }
        None
    }

    fn on_external_remove(&mut self, key: &K) {
        if let Some(i) = self.index.remove(key) {
            self.slots[i] = None;
            self.free.push(i);
        }
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_unreferenced_first() {
        let mut p = ClockPolicy::new();
        for k in [1u32, 2, 3] {
            p.on_insert(&k);
        }
        p.on_hit(&1);
        // 1 has its bit set: the hand clears it and evicts 2.
        assert_eq!(p.victim(), Some(2));
        // Next victim is 3 (1's bit was cleared during the sweep but the
        // hand is past it).
        assert_eq!(p.victim(), Some(3));
        assert_eq!(p.victim(), Some(1));
        assert_eq!(p.victim(), None);
    }

    #[test]
    fn second_chance_protects_hot_keys() {
        let mut p = ClockPolicy::new();
        p.on_insert(&100u32);
        for round in 0..50u32 {
            p.on_insert(&round);
            p.on_hit(&100); // keep 100 hot
            let v = p.victim().unwrap();
            assert_ne!(v, 100, "hot key evicted in round {round}");
        }
    }

    #[test]
    fn external_remove_recycles_slots() {
        let mut p = ClockPolicy::new();
        for k in 0..10u32 {
            p.on_insert(&k);
        }
        for k in (0..10u32).step_by(2) {
            p.on_external_remove(&k);
        }
        assert_eq!(p.len(), 5);
        // Reinsert into recycled slots; all still evictable.
        for k in 10..15u32 {
            p.on_insert(&k);
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = p.victim() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn contract() {
        super::super::check_policy_contract(Box::new(ClockPolicy::new()));
    }
}
