//! Adaptive Replacement Cache (ARC) eviction.
//!
//! Megiddo & Modha's ARC splits residents into a recency list `T1` and a
//! frequency list `T2`, with ghost lists `B1`/`B2` remembering recently
//! evicted keys. A hit in a ghost list shifts the adaptation target `p`
//! toward the list that would have kept the key. AC-Key (ATC '20) uses ARC
//! to balance its cache hierarchy, which is why it appears here as a
//! baseline component.
//!
//! The containers in this crate drive eviction by byte budget, so this
//! implementation adapts `p` in *entry* units against the current resident
//! count rather than a fixed `c`.

use super::Policy;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residency {
    T1,
    T2,
}

/// ARC policy state.
pub struct ArcPolicy<K> {
    t1: BTreeMap<u64, K>,
    t2: BTreeMap<u64, K>,
    b1: BTreeMap<u64, K>,
    b2: BTreeMap<u64, K>,
    /// Resident keys -> (list, tick); ghosts -> tick only.
    resident: HashMap<K, (Residency, u64)>,
    ghost1: HashMap<K, u64>,
    ghost2: HashMap<K, u64>,
    /// Adaptation target: preferred size of `T1`, in entries.
    p: f64,
    clock: u64,
}

impl<K: Clone + Eq + Hash> ArcPolicy<K> {
    /// Creates an empty ARC policy.
    pub fn new() -> Self {
        ArcPolicy {
            t1: BTreeMap::new(),
            t2: BTreeMap::new(),
            b1: BTreeMap::new(),
            b2: BTreeMap::new(),
            resident: HashMap::new(),
            ghost1: HashMap::new(),
            ghost2: HashMap::new(),
            p: 0.0,
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn cache_size(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn trim_ghosts(&mut self) {
        let limit = self.cache_size().max(8);
        while self.b1.len() > limit {
            if let Some((&t, _)) = self.b1.iter().next() {
                if let Some(k) = self.b1.remove(&t) {
                    self.ghost1.remove(&k);
                }
            }
        }
        while self.b2.len() > limit {
            if let Some((&t, _)) = self.b2.iter().next() {
                if let Some(k) = self.b2.remove(&t) {
                    self.ghost2.remove(&k);
                }
            }
        }
    }

    /// Current adaptation target (size preference for `T1`).
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Resident key count.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether no resident keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }
}

impl<K: Clone + Eq + Hash> Default for ArcPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Eq + Hash + Send> Policy<K> for ArcPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        debug_assert!(!self.resident.contains_key(key));
        let c = self.cache_size().max(1) as f64;
        if let Some(t) = self.ghost1.remove(key) {
            // Ghost hit in B1: recency would have kept it; grow p.
            self.b1.remove(&t);
            let delta = (self.b2.len().max(1) as f64 / self.b1.len().max(1) as f64).max(1.0);
            self.p = (self.p + delta).min(c);
            let tick = self.tick();
            self.t2.insert(tick, key.clone());
            self.resident.insert(key.clone(), (Residency::T2, tick));
        } else if let Some(t) = self.ghost2.remove(key) {
            // Ghost hit in B2: frequency would have kept it; shrink p.
            self.b2.remove(&t);
            let delta = (self.b1.len().max(1) as f64 / self.b2.len().max(1) as f64).max(1.0);
            self.p = (self.p - delta).max(0.0);
            let tick = self.tick();
            self.t2.insert(tick, key.clone());
            self.resident.insert(key.clone(), (Residency::T2, tick));
        } else {
            let tick = self.tick();
            self.t1.insert(tick, key.clone());
            self.resident.insert(key.clone(), (Residency::T1, tick));
        }
        self.trim_ghosts();
    }

    fn on_hit(&mut self, key: &K) {
        let Some(&(list, tick)) = self.resident.get(key) else {
            return;
        };
        match list {
            Residency::T1 => {
                self.t1.remove(&tick);
            }
            Residency::T2 => {
                self.t2.remove(&tick);
            }
        }
        let tick = self.tick();
        self.t2.insert(tick, key.clone());
        self.resident.insert(key.clone(), (Residency::T2, tick));
    }

    fn victim(&mut self) -> Option<K> {
        // REPLACE: evict from T1 when it exceeds the target p, else from T2.
        let from_t1 = if self.t1.is_empty() {
            false
        } else if self.t2.is_empty() {
            true
        } else {
            (self.t1.len() as f64) > self.p.max(1.0)
        };
        let (key, tick) = if from_t1 {
            let (&t, k) = self.t1.iter().next()?;
            let k = k.clone();
            self.t1.remove(&t);
            self.b1.insert(t, k.clone());
            self.ghost1.insert(k.clone(), t);
            (k, t)
        } else {
            let (&t, k) = self.t2.iter().next()?;
            let k = k.clone();
            self.t2.remove(&t);
            self.b2.insert(t, k.clone());
            self.ghost2.insert(k.clone(), t);
            (k, t)
        };
        let _ = tick;
        self.resident.remove(&key);
        self.trim_ghosts();
        Some(key)
    }

    fn on_external_remove(&mut self, key: &K) {
        if let Some((list, tick)) = self.resident.remove(key) {
            match list {
                Residency::T1 => self.t1.remove(&tick),
                Residency::T2 => self.t2.remove(&tick),
            };
        }
    }

    fn name(&self) -> &'static str {
        "arc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_goes_to_t1_rehit_promotes() {
        let mut p = ArcPolicy::new();
        p.on_insert(&1u32);
        assert_eq!(p.t1.len(), 1);
        p.on_hit(&1);
        assert_eq!(p.t1.len(), 0);
        assert_eq!(p.t2.len(), 1);
    }

    #[test]
    fn ghost_hit_in_b1_raises_p() {
        let mut p = ArcPolicy::new();
        for k in 0..8u32 {
            p.on_insert(&k);
        }
        // Evict until something lands in B1 (all in T1 initially).
        let v = p.victim().unwrap();
        assert!(p.ghost1.contains_key(&v));
        let before = p.p();
        p.on_insert(&v);
        assert!(p.p() > before, "B1 ghost hit must grow p");
        // The re-inserted key is now a frequency resident.
        assert_eq!(p.resident.get(&v).unwrap().0, Residency::T2);
    }

    #[test]
    fn ghost_hit_in_b2_lowers_p() {
        let mut p = ArcPolicy::new();
        for k in 0..4u32 {
            p.on_insert(&k);
            p.on_hit(&k); // everything in T2
        }
        let v = p.victim().unwrap();
        assert!(p.ghost2.contains_key(&v));
        p.p = 3.0;
        p.on_insert(&v);
        assert!(p.p() < 3.0, "B2 ghost hit must shrink p");
    }

    #[test]
    fn scan_resistance_keeps_frequent_keys() {
        // Two hot keys re-hit; a long scan of cold keys must not displace
        // them before the colds cycle out.
        let mut p = ArcPolicy::new();
        p.on_insert(&1000u32);
        p.on_insert(&1001);
        p.on_hit(&1000);
        p.on_hit(&1001);
        for k in 0..50u32 {
            p.on_insert(&k);
            // Keep resident size bounded at 6.
            while p.len() > 6 {
                let v = p.victim().unwrap();
                assert!(v != 1000 && v != 1001, "hot key {v} evicted by scan");
            }
        }
    }

    #[test]
    fn contract() {
        super::super::check_policy_contract(Box::new(ArcPolicy::new()));
    }
}
