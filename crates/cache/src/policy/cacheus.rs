//! Cacheus (Rodriguez et al., FAST '21): LeCaR's successor with
//! scan-resistant and churn-resistant experts and an adaptive learning rate.
//!
//! Two changes over LeCaR, both reproduced here:
//!
//! 1. **Experts.** LRU is replaced by **SR-LRU** (scan-resistant LRU: new
//!    keys enter a probationary segment and only re-accessed keys are
//!    promoted to the protected segment, so a one-pass scan cannot flush
//!    established residents), and LFU by **CR-LFU** (churn-resistant LFU:
//!    frequency ties evict the most recently inserted key, protecting the
//!    established residents under key churn).
//! 2. **Adaptive learning rate.** Instead of LeCaR's fixed λ, the learning
//!    rate grows while the recent regret trend worsens and shrinks while it
//!    improves, following the gradient heuristic in the Cacheus paper.

use super::lfu::TieBreak;
use super::{LfuPolicy, Policy};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;

const DISCOUNT: f64 = 0.005;

/// Scan-resistant LRU used as Cacheus's recency expert.
///
/// Residents split into a probationary segment `S` (first touch) and a
/// protected segment `R` (re-accessed). Victims come from `S` first; `R` is
/// demoted into `S` only when `S` is empty.
struct SrLru<K> {
    s: BTreeMap<u64, K>,
    r: BTreeMap<u64, K>,
    meta: HashMap<K, (bool, u64)>, // (protected, tick)
    clock: u64,
}

impl<K: Clone + Eq + Hash> SrLru<K> {
    fn new() -> Self {
        SrLru {
            s: BTreeMap::new(),
            r: BTreeMap::new(),
            meta: HashMap::new(),
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn insert(&mut self, key: &K) {
        let t = self.tick();
        self.s.insert(t, key.clone());
        self.meta.insert(key.clone(), (false, t));
    }

    fn hit(&mut self, key: &K) {
        let Some(&(protected, tick)) = self.meta.get(key) else {
            return;
        };
        if protected {
            self.r.remove(&tick);
        } else {
            self.s.remove(&tick);
        }
        let t = self.tick();
        self.r.insert(t, key.clone());
        self.meta.insert(key.clone(), (true, t));
    }

    fn victim(&mut self) -> Option<K> {
        let from_s = !self.s.is_empty();
        let map = if from_s { &mut self.s } else { &mut self.r };
        let (&t, k) = map.iter().next()?;
        let k = k.clone();
        map.remove(&t);
        self.meta.remove(&k);
        Some(k)
    }

    fn remove(&mut self, key: &K) {
        if let Some((protected, tick)) = self.meta.remove(key) {
            if protected {
                self.r.remove(&tick);
            } else {
                self.s.remove(&tick);
            }
        }
    }
}

/// Cacheus policy state.
pub struct CacheusPolicy<K> {
    srlru: SrLru<K>,
    crlfu: LfuPolicy<K>,
    hist_lru: HashMap<K, u64>,
    hist_lru_order: VecDeque<K>,
    hist_lfu: HashMap<K, u64>,
    hist_lfu_order: VecDeque<K>,
    w_lru: f64,
    w_lfu: f64,
    /// Adaptive learning rate.
    lr: f64,
    /// Regret accumulated in the current and previous adaptation windows.
    window_regret: f64,
    prev_window_regret: f64,
    ops_in_window: u64,
    step: u64,
    resident: usize,
    rng_state: u64,
}

impl<K: Clone + Eq + Hash> CacheusPolicy<K> {
    /// Creates the policy with equal expert weights and the paper's initial
    /// learning rate.
    pub fn new() -> Self {
        Self::with_seed(0x0CAC_4E05)
    }

    /// Deterministic construction.
    pub fn with_seed(seed: u64) -> Self {
        CacheusPolicy {
            srlru: SrLru::new(),
            crlfu: LfuPolicy::with_tiebreak(TieBreak::Mru),
            hist_lru: HashMap::new(),
            hist_lru_order: VecDeque::new(),
            hist_lfu: HashMap::new(),
            hist_lfu_order: VecDeque::new(),
            w_lru: 0.5,
            w_lfu: 0.5,
            lr: 0.45,
            window_regret: 0.0,
            prev_window_regret: 0.0,
            ops_in_window: 0,
            step: 0,
            resident: 0,
            rng_state: seed.max(1),
        }
    }

    fn rand_unit(&mut self) -> f64 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        (self.rng_state >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Current `(w_srlru, w_crlfu)` weights.
    pub fn weights(&self) -> (f64, f64) {
        (self.w_lru, self.w_lfu)
    }

    /// Current adaptive learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn penalize(&mut self, blame_lru: bool, evicted_at: u64) {
        let age = self.step.saturating_sub(evicted_at) as f64;
        let n = self.resident.max(1) as f64;
        let regret = DISCOUNT.powf(age / n);
        self.window_regret += regret;
        let factor = (self.lr * regret).exp();
        if blame_lru {
            self.w_lfu *= factor;
        } else {
            self.w_lru *= factor;
        }
        let total = self.w_lru + self.w_lfu;
        self.w_lru /= total;
        self.w_lfu /= total;
    }

    fn maybe_adapt_lr(&mut self) {
        // Adapt once per resident-set-sized window, per the Cacheus paper's
        // gradient heuristic: regret rising => explore harder; falling =>
        // settle down.
        self.ops_in_window += 1;
        let window = (self.resident.max(16)) as u64;
        if self.ops_in_window < window {
            return;
        }
        if self.window_regret > self.prev_window_regret {
            self.lr = (self.lr * 1.1).min(1.0);
        } else {
            self.lr = (self.lr * 0.9).max(0.001);
        }
        self.prev_window_regret = self.window_regret;
        self.window_regret = 0.0;
        self.ops_in_window = 0;
    }

    fn trim_history(&mut self) {
        let limit = self.resident.max(8);
        while self.hist_lru_order.len() > limit {
            if let Some(k) = self.hist_lru_order.pop_front() {
                self.hist_lru.remove(&k);
            }
        }
        while self.hist_lfu_order.len() > limit {
            if let Some(k) = self.hist_lfu_order.pop_front() {
                self.hist_lfu.remove(&k);
            }
        }
    }
}

impl<K: Clone + Eq + Hash> Default for CacheusPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Eq + Hash + Send> Policy<K> for CacheusPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        self.step += 1;
        if let Some(at) = self.hist_lru.remove(key) {
            self.penalize(true, at);
        } else if let Some(at) = self.hist_lfu.remove(key) {
            self.penalize(false, at);
        }
        self.srlru.insert(key);
        self.crlfu.on_insert(key);
        self.resident += 1;
        self.maybe_adapt_lr();
        self.trim_history();
    }

    fn on_hit(&mut self, key: &K) {
        self.step += 1;
        self.srlru.hit(key);
        self.crlfu.on_hit(key);
        self.maybe_adapt_lr();
    }

    fn victim(&mut self) -> Option<K> {
        if self.resident == 0 {
            return None;
        }
        let use_lru = self.rand_unit() < self.w_lru;
        let victim = if use_lru {
            self.srlru.victim()
        } else {
            self.crlfu.victim()
        }?;
        if use_lru {
            self.crlfu.on_external_remove(&victim);
            self.hist_lru.insert(victim.clone(), self.step);
            self.hist_lru_order.push_back(victim.clone());
        } else {
            self.srlru.remove(&victim);
            self.hist_lfu.insert(victim.clone(), self.step);
            self.hist_lfu_order.push_back(victim.clone());
        }
        self.resident -= 1;
        self.trim_history();
        Some(victim)
    }

    fn on_external_remove(&mut self, key: &K) {
        self.srlru.remove(key);
        self.crlfu.on_external_remove(key);
        self.resident = self.resident.saturating_sub(1);
    }

    fn name(&self) -> &'static str {
        "cacheus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srlru_is_scan_resistant() {
        // Protected (re-accessed) keys survive a one-pass scan that flows
        // through the probationary segment.
        let mut p = CacheusPolicy::with_seed(1);
        p.on_insert(&900u32);
        p.on_insert(&901);
        p.on_hit(&900);
        p.on_hit(&901);
        // Force expert choice to SR-LRU by pinning the weights.
        p.w_lru = 1.0;
        p.w_lfu = 0.0;
        for k in 0..100u32 {
            p.on_insert(&k);
            while p.resident > 6 {
                let v = p.victim().unwrap();
                assert!(v != 900 && v != 901, "protected key {v} evicted by scan");
            }
        }
    }

    #[test]
    fn crlfu_tiebreak_is_churn_resistant() {
        let mut p = CacheusPolicy::with_seed(1);
        p.w_lru = 0.0;
        p.w_lfu = 1.0;
        p.on_insert(&1u32);
        p.on_insert(&2);
        // Same frequency: CR-LFU evicts the newest insert.
        assert_eq!(p.victim(), Some(2));
    }

    #[test]
    fn learning_rate_adapts() {
        let mut p = CacheusPolicy::with_seed(5);
        let initial = p.learning_rate();
        // Build regret: insert, evict, re-insert the evicted key repeatedly.
        for round in 0..400u32 {
            for k in 0..8 {
                p.on_insert(&(round * 8 + k));
            }
            while p.resident > 8 {
                p.victim();
            }
            // Re-insert a few historical keys to generate regret.
            let ghosts: Vec<u32> = p.hist_lru.keys().take(2).copied().collect();
            for g in ghosts {
                p.on_insert(&g);
            }
        }
        assert_ne!(
            p.learning_rate(),
            initial,
            "learning rate should have moved"
        );
    }

    #[test]
    fn weights_stay_normalized_under_pressure() {
        let mut p = CacheusPolicy::with_seed(9);
        for k in 0..500u32 {
            p.on_insert(&k);
            if k % 3 == 0 {
                p.victim();
            }
            let (a, b) = p.weights();
            assert!((a + b - 1.0).abs() < 1e-9);
            assert!(a >= 0.0 && b >= 0.0);
        }
    }

    #[test]
    fn contract() {
        super::super::check_policy_contract(Box::new(CacheusPolicy::<u32>::new()));
    }
}
