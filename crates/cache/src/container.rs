//! A byte-charged cache container with pluggable eviction.
//!
//! [`ChargedCache`] owns the resident map and the byte budget; a
//! [`Policy`] chooses victims. Capacity can be re-set at runtime — the
//! mechanism behind AdCache's dynamic cache boundary — and shrinking evicts
//! immediately until the new budget holds.

use crate::policy::Policy;
use std::collections::HashMap;
use std::hash::Hash;

/// Counters exposed by every cache in this crate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries admitted.
    pub inserts: u64,
    /// Entries evicted by policy decision.
    pub evictions: u64,
    /// Entries dropped by invalidation or explicit removal.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate over all lookups, or 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A capacity-bounded map from `K` to `V` where each entry carries an
/// explicit byte charge.
pub struct ChargedCache<K, V> {
    map: HashMap<K, (V, usize)>,
    policy: Box<dyn Policy<K>>,
    capacity: usize,
    used: usize,
    stats: CacheStats,
}

impl<K: Clone + Eq + Hash, V> ChargedCache<K, V> {
    /// Creates a cache bounded at `capacity` bytes.
    pub fn new(capacity: usize, policy: Box<dyn Policy<K>>) -> Self {
        ChargedCache {
            map: HashMap::new(),
            policy,
            capacity,
            used: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up `key`, updating recency on hit and the hit/miss counters.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.map.contains_key(key) {
            self.stats.hits += 1;
            self.policy.on_hit(key);
            self.map.get(key).map(|(v, _)| v)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Looks up without touching recency or counters (for introspection).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Whether `key` is resident (no side effects).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key -> value` charged at `charge` bytes, evicting as needed.
    /// Returns the evicted entries. An entry larger than the whole capacity
    /// is refused (returned back as the sole "evicted" item).
    pub fn insert(&mut self, key: K, value: V, charge: usize) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        if charge > self.capacity {
            // Refuse oversized entries outright.
            evicted.push((key, value));
            return evicted;
        }
        if let Some((old_v, old_charge)) = self.map.remove(&key) {
            self.used -= old_charge;
            self.policy.on_external_remove(&key);
            evicted.push((key.clone(), old_v));
        }
        self.stats.inserts += 1;
        self.used += charge;
        self.map.insert(key.clone(), (value, charge));
        self.policy.on_insert(&key);
        while self.used > self.capacity {
            let Some(victim) = self.policy.victim() else {
                break;
            };
            if let Some((v, c)) = self.map.remove(&victim) {
                self.used -= c;
                self.stats.evictions += 1;
                evicted.push((victim, v));
            }
        }
        evicted
    }

    /// Removes `key` (invalidation path). Returns the value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (v, c) = self.map.remove(key)?;
        self.used -= c;
        self.policy.on_external_remove(key);
        self.stats.invalidations += 1;
        Some(v)
    }

    /// Removes every entry matching `pred`, returning how many were dropped.
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) -> usize {
        let doomed: Vec<K> = self.map.keys().filter(|k| !keep(k)).cloned().collect();
        let n = doomed.len();
        for k in doomed {
            self.remove(&k);
        }
        n
    }

    /// Re-targets the byte budget, evicting down to it when shrinking.
    /// Returns the evicted entries.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<(K, V)> {
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.used > self.capacity {
            let Some(victim) = self.policy.victim() else {
                break;
            };
            if let Some((v, c)) = self.map.remove(&victim) {
                self.used -= c;
                self.stats.evictions += 1;
                evicted.push((victim, v));
            }
        }
        evicted
    }

    /// Current byte budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently charged.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LruPolicy;

    fn cache(cap: usize) -> ChargedCache<u32, String> {
        ChargedCache::new(cap, Box::new(LruPolicy::new()))
    }

    #[test]
    fn insert_get_and_stats() {
        let mut c = cache(100);
        assert!(c.insert(1, "a".into(), 10).is_empty());
        assert_eq!(c.get(&1), Some(&"a".to_string()));
        assert_eq!(c.get(&2), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.used(), 10);
    }

    #[test]
    fn eviction_respects_byte_budget_and_lru_order() {
        let mut c = cache(30);
        c.insert(1, "a".into(), 10);
        c.insert(2, "b".into(), 10);
        c.insert(3, "c".into(), 10);
        c.get(&1); // 1 becomes MRU
        let evicted = c.insert(4, "d".into(), 20);
        // Need to free 20 bytes: victims are 2 then 3.
        let keys: Vec<u32> = evicted.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 3]);
        assert!(c.contains(&1) && c.contains(&4));
        assert_eq!(c.used(), 30);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn oversized_entries_are_refused() {
        let mut c = cache(10);
        let refused = c.insert(1, "big".into(), 11);
        assert_eq!(refused.len(), 1);
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn reinsert_replaces_charge() {
        let mut c = cache(100);
        c.insert(1, "a".into(), 10);
        c.insert(1, "b".into(), 30);
        assert_eq!(c.used(), 30);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&1), Some(&"b".to_string()));
    }

    #[test]
    fn shrink_capacity_evicts_down() {
        let mut c = cache(100);
        for k in 0..10u32 {
            c.insert(k, format!("{k}"), 10);
        }
        let evicted = c.set_capacity(35);
        assert_eq!(evicted.len(), 7, "must evict down to 3 entries");
        assert_eq!(c.used(), 30);
        assert_eq!(c.capacity(), 35);
        // Survivors are the most recent.
        assert!(c.contains(&9) && c.contains(&8) && c.contains(&7));
    }

    #[test]
    fn grow_capacity_keeps_entries() {
        let mut c = cache(20);
        c.insert(1, "a".into(), 10);
        c.insert(2, "b".into(), 10);
        assert!(c.set_capacity(100).is_empty());
        assert_eq!(c.len(), 2);
        c.insert(3, "c".into(), 50);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn remove_and_retain() {
        let mut c = cache(100);
        for k in 0..5u32 {
            c.insert(k, format!("{k}"), 10);
        }
        assert_eq!(c.remove(&2), Some("2".to_string()));
        assert_eq!(c.remove(&2), None);
        let dropped = c.retain(|k| *k % 2 == 0);
        assert_eq!(dropped, 2); // 1 and 3
        assert_eq!(c.len(), 2); // 0 and 4
        assert_eq!(c.used(), 20);
        assert_eq!(c.stats().invalidations, 3);
    }

    #[test]
    fn zero_capacity_admits_nothing() {
        let mut c = cache(0);
        c.insert(1, "a".into(), 1);
        assert!(c.is_empty());
    }
}
