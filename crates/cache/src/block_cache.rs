//! Sharded block cache (RocksDB-style).
//!
//! Caches decoded data blocks keyed by `(file, block_no)`. Because keys are
//! physical, compactions invalidate every cached block of the files they
//! delete — the structural weakness of block caching that motivates the
//! paper (Section 2.2). The cache registers as a [`CompactionListener`] to
//! perform exactly that sweep.
//!
//! Lookups go through a [`ScopedBlockProvider`], created per query, which
//! carries an optional *admission budget*: AdCache's partial scan admission
//! applied at block granularity (paper Section 3.4, closing note) — after
//! the budget is consumed, further misses still read from storage but are
//! not admitted.

use crate::container::{CacheStats, ChargedCache};
use crate::policy::{LruPolicy, Policy};
use adcache_lsm::compaction::{CompactionEvent, CompactionListener};
use adcache_lsm::sstable::{decode_stored_block_at, BlockProvider, TableMeta};
use adcache_lsm::{Block, BlockRef, FileId, Result, Storage};
use adcache_obs::{CacheStructure, Counter, Event, EvictionCause, Obs};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Factory producing one eviction policy per shard.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn Policy<BlockRef>> + Send + Sync>;

/// Pre-resolved observability handles: counters are registered once when
/// tracing is attached, so the per-block hot path never touches the
/// registry. When tracing is never attached the `OnceLock` stays empty and
/// every hook reduces to one relaxed load plus an untaken branch.
struct BlockObsHooks {
    obs: Obs,
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    evictions: Counter,
    invalidations: Counter,
}

impl BlockObsHooks {
    fn new(obs: Obs) -> Self {
        BlockObsHooks {
            hits: obs.counter("cache.block.hits"),
            misses: obs.counter("cache.block.misses"),
            inserts: obs.counter("cache.block.inserts"),
            evictions: obs.counter("cache.block.evictions"),
            invalidations: obs.counter("cache.block.invalidations"),
            obs,
        }
    }
}

fn evicted_block_bytes(evicted: &[(BlockRef, Arc<Block>)]) -> u64 {
    evicted.iter().map(|(_, b)| b.encoded_len() as u64).sum()
}

/// A sharded, byte-charged cache of decoded SSTable blocks.
pub struct BlockCache {
    shards: Vec<Mutex<ChargedCache<BlockRef, Arc<Block>>>>,
    obs: OnceLock<BlockObsHooks>,
    decode_failures: AtomicU64,
}

fn shard_of(key: &BlockRef, n: usize) -> usize {
    // Mix file and block number; files are few so spread blocks too.
    let h = key
        .file
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((key.block_no as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    (h >> 32) as usize % n
}

impl BlockCache {
    /// Creates a cache with `capacity` total bytes split over `shards`
    /// LRU-managed shards.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_policy(capacity, shards, Box::new(|| Box::new(LruPolicy::new())))
    }

    /// Creates a cache with a custom per-shard eviction policy.
    pub fn with_policy(capacity: usize, shards: usize, factory: PolicyFactory) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity / shards;
        BlockCache {
            shards: (0..shards)
                .map(|_| Mutex::new(ChargedCache::new(per_shard, factory())))
                .collect(),
            obs: OnceLock::new(),
            decode_failures: AtomicU64::new(0),
        }
    }

    /// Attaches an observability handle. Hit/miss/eviction counters and
    /// eviction events flow into it from now on; a second call is a no-op.
    pub fn set_obs(&self, obs: Obs) {
        let _ = self.obs.set(BlockObsHooks::new(obs));
    }

    /// Re-targets the total byte budget (split evenly across shards),
    /// evicting overflow immediately. Returns how many blocks were evicted.
    pub fn set_capacity(&self, capacity: usize) -> usize {
        let per_shard = capacity / self.shards.len();
        let mut count = 0u64;
        let mut bytes = 0u64;
        for s in &self.shards {
            let evicted = s.lock().set_capacity(per_shard);
            count += evicted.len() as u64;
            bytes += evicted_block_bytes(&evicted);
        }
        if let Some(h) = self.obs.get() {
            if count > 0 {
                h.evictions.add(count);
                h.obs.emit(|| Event::Eviction {
                    cache: CacheStructure::Block,
                    cause: EvictionCause::Resize,
                    count,
                    bytes,
                });
            }
        }
        count as usize
    }

    /// Total byte budget.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Bytes currently resident.
    pub fn used(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used()).sum()
    }

    /// Resident block count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated counters across shards.
    pub fn stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for s in &self.shards {
            let st = s.lock().stats();
            agg.hits += st.hits;
            agg.misses += st.misses;
            agg.inserts += st.inserts;
            agg.evictions += st.evictions;
            agg.invalidations += st.invalidations;
        }
        agg
    }

    /// Drops every resident block (capacity unchanged).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().retain(|_| false);
        }
    }

    /// Drops every cached block belonging to `files`. Returns the number of
    /// blocks invalidated.
    pub fn invalidate(&self, files: &[FileId]) -> usize {
        let mut dropped = 0u64;
        let mut bytes = 0u64;
        for s in &self.shards {
            let mut shard = s.lock();
            let before = shard.used() as u64;
            dropped += shard.retain(|k| !files.contains(&k.file)) as u64;
            bytes += before - shard.used() as u64;
        }
        if let Some(h) = self.obs.get() {
            if dropped > 0 {
                h.invalidations.add(dropped);
                h.obs.emit(|| Event::BlockCacheInvalidation {
                    files: files.len() as u64,
                    blocks_dropped: dropped,
                });
                h.obs.emit(|| Event::Eviction {
                    cache: CacheStructure::Block,
                    cause: EvictionCause::Invalidation,
                    count: dropped,
                    bytes,
                });
            }
        }
        dropped as usize
    }

    /// Directly admits a decoded block (prefetching and warm-up paths).
    pub fn insert_block(&self, key: BlockRef, block: Arc<Block>) {
        let charge = block.encoded_len();
        let evicted = self.shards[shard_of(&key, self.shards.len())]
            .lock()
            .insert(key, block, charge);
        self.note_insert(&key, &evicted);
    }

    /// Counter/event bookkeeping shared by the admission paths. Entries in
    /// `evicted` carrying the inserted key itself (same-key replacement, or
    /// an oversized refusal bounced straight back) are not policy evictions.
    fn note_insert(&self, inserted: &BlockRef, mut evicted: &[(BlockRef, Arc<Block>)]) {
        let Some(h) = self.obs.get() else { return };
        h.inserts.inc();
        while let Some((k, _)) = evicted.first() {
            if k == inserted {
                evicted = &evicted[1..];
            } else {
                break;
            }
        }
        if !evicted.is_empty() {
            h.evictions.add(evicted.len() as u64);
            h.obs.emit(|| Event::Eviction {
                cache: CacheStructure::Block,
                cause: EvictionCause::Capacity,
                count: evicted.len() as u64,
                bytes: evicted_block_bytes(evicted),
            });
        }
    }

    /// Blocks that failed checksum/decode verification on load and were
    /// therefore refused admission (the owning file's cached blocks are
    /// invalidated each time).
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures.load(Ordering::Relaxed)
    }

    /// Looks up a block without admission side effects (tests/metrics).
    pub fn peek(&self, key: &BlockRef) -> Option<Arc<Block>> {
        self.shards[shard_of(key, self.shards.len())]
            .lock()
            .peek(key)
            .cloned()
    }

    /// A per-query provider with unlimited admission.
    pub fn provider(&self) -> ScopedBlockProvider<'_> {
        ScopedBlockProvider {
            cache: self,
            admit_remaining: AtomicUsize::new(usize::MAX),
        }
    }

    /// A per-query provider that admits at most `budget` missed blocks
    /// (partial scan admission at block granularity).
    pub fn provider_with_budget(&self, budget: usize) -> ScopedBlockProvider<'_> {
        ScopedBlockProvider {
            cache: self,
            admit_remaining: AtomicUsize::new(budget),
        }
    }

    fn get_or_load(
        &self,
        meta: &TableMeta,
        block_no: u32,
        storage: &dyn Storage,
        admit: &AtomicUsize,
    ) -> Result<Arc<Block>> {
        let key = BlockRef::new(meta.id, block_no);
        let shard = &self.shards[shard_of(&key, self.shards.len())];
        if let Some(block) = shard.lock().get(&key).cloned() {
            if let Some(h) = self.obs.get() {
                h.hits.inc();
            }
            return Ok(block);
        }
        if let Some(h) = self.obs.get() {
            h.misses.inc();
        }
        // Miss: fetch outside the shard lock (the device read dominates).
        let stored = storage.read_block(meta.id, block_no)?;
        let block = match decode_stored_block_at(meta.id, block_no, stored) {
            Ok(b) => Arc::new(b),
            Err(e) => {
                // Containment: a block that failed checksum/decode is never
                // admitted, and anything previously cached from the same
                // file is suspect — drop it so a corrupt device region
                // cannot keep serving stale decodes from memory.
                self.decode_failures.fetch_add(1, Ordering::Relaxed);
                self.invalidate(&[meta.id]);
                if let Some(h) = self.obs.get() {
                    h.obs.emit(|| Event::BlockQuarantined {
                        file: meta.id,
                        block: block_no as u64,
                    });
                }
                return Err(e);
            }
        };
        let budget = admit.load(Ordering::Relaxed);
        if budget > 0 {
            admit.store(budget.saturating_sub(1), Ordering::Relaxed);
            let charge = block.encoded_len();
            let evicted = shard.lock().insert(key, block.clone(), charge);
            self.note_insert(&key, &evicted);
        }
        Ok(block)
    }
}

/// Per-query view of a [`BlockCache`] carrying the admission budget.
pub struct ScopedBlockProvider<'a> {
    cache: &'a BlockCache,
    admit_remaining: AtomicUsize,
}

impl ScopedBlockProvider<'_> {
    /// Remaining admission budget.
    pub fn remaining_budget(&self) -> usize {
        self.admit_remaining.load(Ordering::Relaxed)
    }
}

impl BlockProvider for ScopedBlockProvider<'_> {
    fn block(&self, meta: &TableMeta, block_no: u32, storage: &dyn Storage) -> Result<Arc<Block>> {
        self.cache
            .get_or_load(meta, block_no, storage, &self.admit_remaining)
    }

    fn invalidate_files(&self, files: &[FileId]) {
        self.cache.invalidate(files);
    }
}

impl CompactionListener for BlockCache {
    fn on_compaction(&self, event: &CompactionEvent) {
        self.invalidate(&event.obsolete_files);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcache_lsm::sstable::TableBuilder;
    use adcache_lsm::{Entry, MemStorage, Options};
    use bytes::Bytes;

    fn table(storage: &dyn Storage, id: FileId, n: usize) -> Arc<TableMeta> {
        let mut b = TableBuilder::new(id, &Options::small());
        for i in 0..n {
            let k = format!("t{id}-k{i:05}");
            b.add(k.as_bytes(), &Entry::Put(Bytes::from(format!("v{i}"))))
                .unwrap();
        }
        b.finish(storage).unwrap()
    }

    #[test]
    fn caches_blocks_and_avoids_repeat_io() {
        let storage = MemStorage::new();
        let meta = table(&storage, 1, 500);
        let cache = BlockCache::new(1 << 20, 4);
        let p = cache.provider();
        p.block(&meta, 0, &storage).unwrap();
        assert_eq!(storage.stats().reads(), 1);
        p.block(&meta, 0, &storage).unwrap();
        assert_eq!(
            storage.stats().reads(),
            1,
            "second access must hit the cache"
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(cache.used() > 0);
    }

    #[test]
    fn eviction_under_byte_pressure() {
        let storage = MemStorage::new();
        let meta = table(&storage, 1, 2000);
        // Budget of ~2 blocks (blocks are ~512 B in Options::small()).
        let cache = BlockCache::new(1100, 1);
        let p = cache.provider();
        for b in 0..meta.num_blocks.min(10) {
            p.block(&meta, b, &storage).unwrap();
        }
        assert!(cache.len() <= 2);
        assert!(cache.stats().evictions > 0);
        assert!(cache.used() <= cache.capacity());
    }

    #[test]
    fn compaction_invalidates_only_obsolete_files() {
        let storage = MemStorage::new();
        let m1 = table(&storage, 1, 300);
        let m2 = table(&storage, 2, 300);
        let cache = BlockCache::new(1 << 20, 4);
        let p = cache.provider();
        p.block(&m1, 0, &storage).unwrap();
        p.block(&m2, 0, &storage).unwrap();
        assert_eq!(cache.len(), 2);
        cache.on_compaction(&CompactionEvent {
            from_level: 0,
            to_level: 1,
            obsolete_files: vec![1],
            new_files: vec![3],
            blocks_read: 0,
            blocks_written: 0,
            trivial_move: false,
        });
        assert_eq!(cache.len(), 1);
        assert!(cache.peek(&BlockRef::new(2, 0)).is_some());
        assert!(cache.peek(&BlockRef::new(1, 0)).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn admission_budget_limits_fills_but_not_reads() {
        let storage = MemStorage::new();
        let meta = table(&storage, 1, 2000);
        let cache = BlockCache::new(1 << 20, 1);
        let p = cache.provider_with_budget(2);
        for b in 0..6u32 {
            p.block(&meta, b, &storage).unwrap();
        }
        assert_eq!(storage.stats().reads(), 6, "reads always served");
        assert_eq!(cache.len(), 2, "only the budget is admitted");
        assert_eq!(p.remaining_budget(), 0);
        // Budget does not block cache *hits*.
        p.block(&meta, 0, &storage).unwrap();
        assert_eq!(storage.stats().reads(), 6);
    }

    #[test]
    fn set_capacity_shrinks_immediately() {
        let storage = MemStorage::new();
        let meta = table(&storage, 1, 2000);
        let cache = BlockCache::new(1 << 20, 2);
        let p = cache.provider();
        for b in 0..10u32 {
            p.block(&meta, b, &storage).unwrap();
        }
        let before = cache.len();
        assert!(before >= 8);
        let evicted = cache.set_capacity(1024);
        assert!(evicted > 0);
        assert!(cache.used() <= 1024);
    }

    #[test]
    fn corrupt_block_is_never_admitted_and_file_is_purged() {
        use adcache_lsm::{FaultPlan, FaultStorage, LsmError};

        let storage = Arc::new(MemStorage::new());
        let meta = table(storage.as_ref(), 1, 500);
        let faulty = FaultStorage::new(storage, 99, FaultPlan::none());
        let cache = BlockCache::new(1 << 20, 4);
        let p = cache.provider();
        // Warm the cache with a clean block from the same file.
        p.block(&meta, 0, &faulty).unwrap();
        assert_eq!(cache.len(), 1);

        // Every subsequent device read returns a bit-flipped copy.
        faulty.set_plan(FaultPlan {
            bit_flip: 1.0,
            ..FaultPlan::none()
        });
        let err = p.block(&meta, 1, &faulty).unwrap_err();
        assert!(matches!(err, LsmError::Corruption(_)), "got {err:?}");
        assert!(
            cache.is_empty(),
            "corrupt block must not be admitted and the file's blocks purged"
        );
        assert_eq!(cache.decode_failures(), 1);

        // Containment, not collapse: once the device reads clean again the
        // same cache keeps serving and admitting.
        faulty.set_plan(FaultPlan::none());
        p.block(&meta, 1, &faulty).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_cache_passes_reads_through() {
        let storage = MemStorage::new();
        let meta = table(&storage, 1, 100);
        let cache = BlockCache::new(0, 1);
        let p = cache.provider();
        p.block(&meta, 0, &storage).unwrap();
        p.block(&meta, 0, &storage).unwrap();
        assert_eq!(storage.stats().reads(), 2);
        assert!(cache.is_empty());
    }
}
