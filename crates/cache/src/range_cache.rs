//! Result-based range cache (Wang et al., ICDE '24; paper Section 2.2).
//!
//! Caches query *results* — individual key-value pairs held in a skiplist —
//! decoupled from the physical block layout, so entries survive compaction.
//! Alongside the entries, the cache tracks **covered segments**: maximal key
//! intervals `[start, end)` within which *every live key of the database*
//! is resident. Coverage is what makes range lookups answerable from cache:
//!
//! - a scan `(from, n)` hits iff, walking coverage from `from`, `n` entries
//!   are found without leaving covered territory (a partial hit still
//!   requires the full LSM seek, so it counts as a miss — exactly the
//!   behaviour the paper describes for Range Cache);
//! - a point lookup inside coverage is answerable even when the key is
//!   absent (a *negative hit*: the key provably does not exist).
//!
//! Coverage stays sound under mutation:
//! - admitted scan results cover `[from, last_admitted⁺)`;
//! - writes inside coverage upsert the entry; deletes inside coverage drop
//!   the entry but keep the segment (covered absence);
//! - evicting an entry `k` splits its segment into `[s, k)` and `[k⁺, e)`.
//!
//! For multi-client use the key space is partitioned into shards, each with
//! its own lock (paper Section 4.4); scans that exhaust a shard's coverage
//! at its upper boundary continue into the next shard.

use crate::container::CacheStats;
use crate::policy::{LruPolicy, Policy};
use adcache_lsm::SkipList;
use adcache_obs::{CacheStructure, Counter, Event, EvictionCause, Obs};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Per-entry bookkeeping overhead added to the byte charge.
const ENTRY_OVERHEAD: usize = 48;

/// Outcome of a point lookup against the range cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointLookup {
    /// The key is resident; here is its value.
    Hit(Bytes),
    /// The key lies inside a covered segment but has no entry: it provably
    /// does not exist in the database.
    NegativeHit,
    /// The cache cannot answer.
    Miss,
}

/// Outcome of a range lookup against the range cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeLookup {
    /// The full result was served from coverage.
    Hit(Vec<(Bytes, Bytes)>),
    /// Coverage ran out before `n` entries were collected; the caller must
    /// fall back to a full LSM scan.
    Miss,
}

/// Factory producing one eviction policy per shard.
pub type RangePolicyFactory = Box<dyn Fn() -> Box<dyn Policy<Bytes>> + Send + Sync>;

#[derive(Debug, Clone, Default)]
struct CachedVal {
    value: Bytes,
}

fn next_key(k: &[u8]) -> Bytes {
    let mut v = Vec::with_capacity(k.len() + 1);
    v.extend_from_slice(k);
    v.push(0);
    Bytes::from(v)
}

struct Shard {
    entries: SkipList<CachedVal>,
    /// Covered segments: start -> end (end exclusive), disjoint, sorted.
    segments: BTreeMap<Bytes, Bytes>,
    policy: Box<dyn Policy<Bytes>>,
    capacity: usize,
    used: usize,
    max_segments: usize,
    evictions: u64,
    invalidations: u64,
    inserts: u64,
}

/// Segment cap for a given byte capacity: point-heavy workloads create one
/// segment per cached entry, so the cap must scale with how many entries
/// the budget can hold (≈ capacity / minimum entry charge), with a floor
/// for tiny shards. An undersized cap silently prunes live entries, which
/// shows up as a hit-rate *drop* when the cache grows.
fn segment_cap(capacity: usize) -> usize {
    (capacity / 64).max(4096)
}

impl Shard {
    fn new(capacity: usize, policy: Box<dyn Policy<Bytes>>) -> Self {
        Shard {
            entries: SkipList::new(),
            segments: BTreeMap::new(),
            policy,
            capacity,
            used: 0,
            max_segments: segment_cap(capacity),
            evictions: 0,
            invalidations: 0,
            inserts: 0,
        }
    }

    fn charge_of(key: &[u8], value: &[u8]) -> usize {
        key.len() + value.len() + ENTRY_OVERHEAD
    }

    /// The covered segment containing `key`, if any.
    fn covering(&self, key: &[u8]) -> Option<(Bytes, Bytes)> {
        let probe = Bytes::copy_from_slice(key);
        let (s, e) = self
            .segments
            .range::<Bytes, _>((Bound::Unbounded, Bound::Included(&probe)))
            .next_back()?;
        (e.as_ref() > key).then(|| (s.clone(), e.clone()))
    }

    fn upsert_entry(&mut self, key: Bytes, value: Bytes) {
        let charge = Self::charge_of(&key, &value);
        match self.entries.get_mut(&key) {
            Some(slot) => {
                let old_charge = Self::charge_of(&key, &slot.value);
                slot.value = value;
                self.used = self.used - old_charge + charge;
                self.policy.on_hit(&key);
            }
            None => {
                self.entries.insert(key.clone(), CachedVal { value });
                self.used += charge;
                self.policy.on_insert(&key);
                self.inserts += 1;
            }
        }
    }

    fn remove_entry(&mut self, key: &[u8], via_eviction: bool) -> bool {
        let Some(val) = self.entries.remove(key) else {
            return false;
        };
        self.used -= Self::charge_of(key, &val.value);
        if via_eviction {
            self.evictions += 1;
        } else {
            self.policy.on_external_remove(&Bytes::copy_from_slice(key));
            self.invalidations += 1;
        }
        true
    }

    /// Merges `[start, end)` into the segment set.
    fn add_segment(&mut self, start: Bytes, end: Bytes) {
        if start >= end {
            return;
        }
        let mut new_start = start.clone();
        let mut new_end = end.clone();
        // Overlapping-or-touching segments all have start_key <= end; walk
        // backwards from there while they still reach our start.
        let mut doomed = Vec::new();
        for (s, e) in self
            .segments
            .range::<Bytes, _>((Bound::Unbounded, Bound::Included(&end)))
            .rev()
        {
            if *e < start {
                break;
            }
            doomed.push(s.clone());
            if *s < new_start {
                new_start = s.clone();
            }
            if *e > new_end {
                new_end = e.clone();
            }
        }
        for s in doomed {
            self.segments.remove(&s);
        }
        self.segments.insert(new_start, new_end);
        self.prune_segments();
    }

    /// Splits coverage at `key` (called when `key`'s entry is evicted).
    fn split_at(&mut self, key: &[u8]) {
        let Some((s, e)) = self.covering(key) else {
            return;
        };
        self.segments.remove(&s);
        if s.as_ref() < key {
            self.segments.insert(s, Bytes::copy_from_slice(key));
        }
        let right_start = next_key(key);
        if right_start < e {
            self.segments.insert(right_start, e);
        }
    }

    /// Evicts down to the byte budget; returns `(entries, bytes)` evicted.
    fn evict_to_capacity(&mut self) -> (u64, u64) {
        let (ev_before, used_before) = (self.evictions, self.used);
        while self.used > self.capacity {
            let Some(victim) = self.policy.victim() else {
                break;
            };
            if self.remove_entry(&victim, true) {
                self.split_at(&victim);
            }
        }
        (self.evictions - ev_before, (used_before - self.used) as u64)
    }

    /// Bounds segment-map growth: drop whole segments (and their entries)
    /// from the cold front until under the cap.
    fn prune_segments(&mut self) {
        while self.segments.len() > self.max_segments {
            let Some((s, e)) = self
                .segments
                .iter()
                .next()
                .map(|(a, b)| (a.clone(), b.clone()))
            else {
                break;
            };
            self.segments.remove(&s);
            let doomed: Vec<Bytes> = self
                .entries
                .iter_from(&s)
                .take_while(|(k, _)| k.as_ref() < e.as_ref())
                .map(|(k, _)| k.clone())
                .collect();
            for k in doomed {
                self.remove_entry(&k, false);
            }
        }
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        // Segments disjoint and sorted.
        let mut prev_end: Option<&Bytes> = None;
        for (s, e) in &self.segments {
            assert!(s < e, "degenerate segment");
            if let Some(pe) = prev_end {
                assert!(pe <= s, "segments overlap");
            }
            prev_end = Some(e);
        }
        // Every entry lies inside a segment; byte accounting agrees.
        let mut used = 0usize;
        for (k, v) in self.entries.iter() {
            assert!(self.covering(k).is_some(), "orphan entry {:?}", k);
            used += Self::charge_of(k, &v.value);
        }
        assert_eq!(used, self.used, "byte accounting drifted");
    }
}

/// Pre-resolved observability handles (see `BlockCache` for the pattern:
/// registered once on attach, lock-free afterwards, absent = inert).
struct RangeObsHooks {
    obs: Obs,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl RangeObsHooks {
    fn new(obs: Obs) -> Self {
        RangeObsHooks {
            hits: obs.counter("cache.range.hits"),
            misses: obs.counter("cache.range.misses"),
            evictions: obs.counter("cache.range.evictions"),
            obs,
        }
    }
}

/// A sharded, coverage-tracking result cache for point and range lookups.
pub struct RangeCache {
    shards: Vec<Mutex<Shard>>,
    /// Shard split points; shard `i` owns `[boundaries[i-1], boundaries[i])`.
    boundaries: Vec<Bytes>,
    hits: AtomicU64,
    misses: AtomicU64,
    obs: OnceLock<RangeObsHooks>,
}

impl RangeCache {
    /// A single-shard cache with LRU eviction (the configuration evaluated
    /// as "Range Cache" in the paper).
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, Box::new(|| Box::new(LruPolicy::new())))
    }

    /// Single shard, custom eviction policy (e.g. LeCaR or Cacheus).
    pub fn with_policy(capacity: usize, factory: RangePolicyFactory) -> Self {
        Self::with_shards(capacity, Vec::new(), factory)
    }

    /// Sharded construction: `boundaries` are the ascending key-space split
    /// points; `boundaries.len() + 1` shards are created.
    pub fn with_shards(
        capacity: usize,
        boundaries: Vec<Bytes>,
        factory: RangePolicyFactory,
    ) -> Self {
        debug_assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        let n = boundaries.len() + 1;
        let per_shard = capacity / n;
        RangeCache {
            shards: (0..n)
                .map(|_| Mutex::new(Shard::new(per_shard, factory())))
                .collect(),
            boundaries,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            obs: OnceLock::new(),
        }
    }

    /// Attaches an observability handle (no-op when called twice).
    pub fn set_obs(&self, obs: Obs) {
        let _ = self.obs.set(RangeObsHooks::new(obs));
    }

    fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = self.obs.get() {
            h.hits.inc();
        }
    }

    fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = self.obs.get() {
            h.misses.inc();
        }
    }

    fn note_evictions(&self, cause: EvictionCause, count: u64, bytes: u64) {
        if count == 0 {
            return;
        }
        if let Some(h) = self.obs.get() {
            h.evictions.add(count);
            h.obs.emit(|| Event::Eviction {
                cache: CacheStructure::Range,
                cause,
                count,
                bytes,
            });
        }
    }

    fn shard_idx(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_ref() <= key)
    }

    /// Upper boundary of shard `i` (`None` for the last shard).
    fn shard_end(&self, i: usize) -> Option<&Bytes> {
        self.boundaries.get(i)
    }

    /// Point lookup.
    pub fn get_point(&self, key: &[u8]) -> PointLookup {
        let mut shard = self.shards[self.shard_idx(key)].lock();
        if let Some(val) = shard.entries.get(key) {
            let value = val.value.clone();
            shard.policy.on_hit(&Bytes::copy_from_slice(key));
            drop(shard);
            self.note_hit();
            return PointLookup::Hit(value);
        }
        if shard.covering(key).is_some() {
            drop(shard);
            self.note_hit();
            return PointLookup::NegativeHit;
        }
        drop(shard);
        self.note_miss();
        PointLookup::Miss
    }

    /// Walks coverage from `from` collecting up to `n` entries. Returns the
    /// collected prefix and, when coverage ran out before `n` entries, the
    /// continuation key: the end of contiguous coverage, i.e. the exact
    /// point an LSM scan must resume from.
    fn walk_range(&self, from: &[u8], n: usize) -> (Vec<(Bytes, Bytes)>, Option<Bytes>) {
        let mut out: Vec<(Bytes, Bytes)> = Vec::with_capacity(n.min(64));
        let mut current = Bytes::copy_from_slice(from);
        loop {
            let idx = self.shard_idx(&current);
            let mut shard = self.shards[idx].lock();
            let Some((_, seg_end)) = shard.covering(&current) else {
                return (out, Some(current));
            };
            let mut touched: Vec<Bytes> = Vec::new();
            for (k, v) in shard.entries.iter_from(&current) {
                if *k >= seg_end || out.len() >= n {
                    break;
                }
                out.push((k.clone(), v.value.clone()));
                touched.push(k.clone());
            }
            for k in &touched {
                shard.policy.on_hit(k);
            }
            if out.len() >= n {
                return (out, None);
            }
            // Coverage exhausted inside this shard: continue into the next
            // shard when the segment reaches this shard's upper boundary,
            // otherwise resume at the coverage end.
            match self.shard_end(idx) {
                Some(boundary) if seg_end >= boundary => {
                    let boundary = boundary.clone();
                    drop(shard);
                    current = boundary;
                }
                _ => {
                    return (out, Some(seg_end));
                }
            }
        }
    }

    /// Range lookup: `n` entries from `from`, served only on full coverage.
    pub fn get_range(&self, from: &[u8], n: usize) -> RangeLookup {
        if n == 0 {
            return RangeLookup::Hit(Vec::new());
        }
        let (out, cont) = self.walk_range(from, n);
        if cont.is_none() {
            self.note_hit();
            RangeLookup::Hit(out)
        } else {
            self.note_miss();
            RangeLookup::Miss
        }
    }

    /// Partial range lookup: serves the covered prefix from cache and
    /// returns the continuation key for the LSM tail scan. A complete
    /// answer counts as a hit; anything partial counts as a miss (the
    /// caller still pays the LSM seek, per the paper), but the prefix's
    /// data blocks are saved.
    pub fn get_range_partial(&self, from: &[u8], n: usize) -> (Vec<(Bytes, Bytes)>, Option<Bytes>) {
        if n == 0 {
            return (Vec::new(), None);
        }
        let (out, cont) = self.walk_range(from, n);
        if cont.is_none() {
            self.note_hit();
        } else {
            self.note_miss();
        }
        (out, cont)
    }

    /// Admits the leading `admitted_len` entries of a scan result that
    /// started at `from` (partial admission; pass `results.len()` for full
    /// admission). An empty result covers `[from, from⁺)` as a negative
    /// range.
    pub fn insert_scan(&self, from: &[u8], results: &[(Bytes, Bytes)], admitted_len: usize) {
        let admitted = admitted_len.min(results.len());
        if results.is_empty() {
            let idx = self.shard_idx(from);
            let mut shard = self.shards[idx].lock();
            let start = Bytes::copy_from_slice(from);
            let end = next_key(from);
            shard.add_segment(start, end);
            return;
        }
        if admitted == 0 {
            return;
        }
        let cov_start = Bytes::copy_from_slice(from);
        let cov_end = next_key(&results[admitted - 1].0);
        // Split the admitted prefix across shards; ascending lock order.
        let mut i = 0usize;
        let mut seg_start = cov_start;
        while i < admitted {
            let idx = self.shard_idx(&results[i].0);
            let shard_upper = self.shard_end(idx).cloned();
            let mut shard = self.shards[idx].lock();
            let mut last_in_shard = i;
            while i < admitted {
                let k = &results[i].0;
                if let Some(ub) = &shard_upper {
                    if k >= ub {
                        break;
                    }
                }
                shard.upsert_entry(results[i].0.clone(), results[i].1.clone());
                last_in_shard = i;
                i += 1;
            }
            let seg_end = if i >= admitted {
                cov_end.clone()
            } else {
                // More entries in the next shard: cover up to the boundary.
                shard_upper
                    .clone()
                    .unwrap_or_else(|| next_key(&results[last_in_shard].0))
            };
            // Clip the segment to this shard's key space.
            let clipped_start = seg_start.clone();
            shard.add_segment(clipped_start, seg_end.clone());
            let (ev_count, ev_bytes) = shard.evict_to_capacity();
            drop(shard);
            self.note_evictions(EvictionCause::Capacity, ev_count, ev_bytes);
            seg_start = seg_end;
        }
    }

    /// Number of leading `keys` currently resident as entries (no stats or
    /// recency side effects). Partial admission uses this so that repeated
    /// overlapping scans *extend* coverage instead of re-admitting the same
    /// prefix — the paper's "overlapping scans naturally accelerate this
    /// process".
    pub fn resident_prefix(&self, keys: &[(Bytes, Bytes)]) -> usize {
        let mut n = 0;
        for (k, _) in keys {
            let shard = self.shards[self.shard_idx(k)].lock();
            if shard.entries.get(k).is_none() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Admits a single point-lookup result.
    pub fn insert_point(&self, key: Bytes, value: Bytes) {
        let idx = self.shard_idx(&key);
        let mut shard = self.shards[idx].lock();
        let end = next_key(&key);
        shard.upsert_entry(key.clone(), value);
        shard.add_segment(key, end);
        let (ev_count, ev_bytes) = shard.evict_to_capacity();
        drop(shard);
        self.note_evictions(EvictionCause::Capacity, ev_count, ev_bytes);
    }

    /// Applies a write so covered ranges never serve stale data: upserts
    /// inside coverage, drops the entry on delete (coverage itself remains
    /// valid — the key is correctly absent afterwards).
    pub fn on_write(&self, key: &[u8], value: Option<&Bytes>) {
        let idx = self.shard_idx(key);
        let mut shard = self.shards[idx].lock();
        match value {
            Some(v) => {
                if shard.covering(key).is_some() {
                    shard.upsert_entry(Bytes::copy_from_slice(key), v.clone());
                    let (ev_count, ev_bytes) = shard.evict_to_capacity();
                    drop(shard);
                    self.note_evictions(EvictionCause::Capacity, ev_count, ev_bytes);
                }
            }
            None => {
                shard.remove_entry(key, false);
            }
        }
    }

    /// Drops every entry and all coverage (capacity unchanged).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock();
            let keys: Vec<Bytes> = s.entries.iter().map(|(k, _)| k.clone()).collect();
            for k in keys {
                s.remove_entry(&k, false);
            }
            s.entries.clear();
            s.segments.clear();
            s.used = 0;
        }
    }

    /// Re-targets the total byte budget (split across shards).
    pub fn set_capacity(&self, capacity: usize) {
        let per_shard = capacity / self.shards.len();
        let mut count = 0u64;
        let mut bytes = 0u64;
        for s in &self.shards {
            let mut s = s.lock();
            s.capacity = per_shard;
            s.max_segments = segment_cap(per_shard);
            let (ev_count, ev_bytes) = s.evict_to_capacity();
            count += ev_count;
            bytes += ev_bytes;
            s.prune_segments();
        }
        self.note_evictions(EvictionCause::Resize, count, bytes);
    }

    /// Total byte budget.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity).sum()
    }

    /// Bytes resident.
    pub fn used(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used).sum()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of covered segments across shards.
    pub fn segment_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().segments.len()).sum()
    }

    /// Query-level counters (one hit or miss per lookup, as the paper
    /// measures) plus entry-level insert/evict/invalidation counts.
    pub fn stats(&self) -> CacheStats {
        let mut st = CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for s in &self.shards {
            let s = s.lock();
            st.inserts += s.inserts;
            st.evictions += s.evictions;
            st.invalidations += s.invalidations;
        }
        st
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        for s in &self.shards {
            s.lock().check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn kv(i: usize) -> (Bytes, Bytes) {
        (
            Bytes::from(format!("key{i:04}")),
            Bytes::from(format!("val{i:04}")),
        )
    }

    fn scan_result(from: usize, n: usize) -> Vec<(Bytes, Bytes)> {
        (from..from + n).map(kv).collect()
    }

    #[test]
    fn point_hit_negative_hit_and_miss() {
        let c = RangeCache::new(1 << 20);
        // Cover keys 10..20 (keys are every index, so all present).
        c.insert_scan(&kv(10).0, &scan_result(10, 10), 10);
        assert_eq!(c.get_point(&kv(12).0), PointLookup::Hit(kv(12).1));
        // A key inside coverage but absent from the DB result: negative.
        assert_eq!(c.get_point(b"key0012x"), PointLookup::NegativeHit);
        assert_eq!(c.get_point(&kv(30).0), PointLookup::Miss);
        c.check_invariants();
    }

    #[test]
    fn range_hit_requires_full_coverage() {
        let c = RangeCache::new(1 << 20);
        c.insert_scan(&kv(10).0, &scan_result(10, 10), 10);
        match c.get_range(&kv(10).0, 10) {
            RangeLookup::Hit(v) => {
                assert_eq!(v.len(), 10);
                assert_eq!(v[0], kv(10));
                assert_eq!(v[9], kv(19));
            }
            RangeLookup::Miss => panic!("full coverage must hit"),
        }
        // Interior start works too.
        match c.get_range(&kv(15).0, 5) {
            RangeLookup::Hit(v) => assert_eq!(v.len(), 5),
            RangeLookup::Miss => panic!(),
        }
        // Asking past coverage is a miss (partial hit = miss).
        assert_eq!(c.get_range(&kv(15).0, 10), RangeLookup::Miss);
        assert_eq!(c.get_range(&kv(50).0, 1), RangeLookup::Miss);
        c.check_invariants();
    }

    #[test]
    fn overlapping_scans_merge_coverage() {
        let c = RangeCache::new(1 << 20);
        c.insert_scan(&kv(10).0, &scan_result(10, 10), 10);
        c.insert_scan(&kv(18).0, &scan_result(18, 10), 10);
        assert_eq!(c.segment_count(), 1, "overlapping coverage must merge");
        match c.get_range(&kv(10).0, 18) {
            RangeLookup::Hit(v) => assert_eq!(v.len(), 18),
            RangeLookup::Miss => panic!("merged coverage must serve the union"),
        }
        c.check_invariants();
    }

    #[test]
    fn partial_admission_covers_only_prefix() {
        let c = RangeCache::new(1 << 20);
        let results = scan_result(0, 64);
        c.insert_scan(&results[0].0, &results, 20);
        assert_eq!(c.len(), 20);
        match c.get_range(&kv(0).0, 20) {
            RangeLookup::Hit(v) => assert_eq!(v.len(), 20),
            RangeLookup::Miss => panic!("admitted prefix must hit"),
        }
        assert_eq!(c.get_range(&kv(0).0, 21), RangeLookup::Miss);
        c.check_invariants();
    }

    #[test]
    fn eviction_splits_coverage() {
        let c = RangeCache::new(1 << 20);
        c.insert_scan(&kv(0).0, &scan_result(0, 10), 10);
        // Evict by shrinking capacity to ~5 entries' worth.
        let per_entry = 7 + 7 + 48;
        c.set_capacity(5 * per_entry);
        assert!(c.len() <= 5);
        assert!(c.segment_count() >= 1);
        // Whatever remains must still answer correctly (hits only on
        // still-covered keys, never stale data).
        for i in 0..10 {
            match c.get_point(&kv(i).0) {
                PointLookup::Hit(v) => assert_eq!(v, kv(i).1),
                PointLookup::NegativeHit => panic!("evicted key {i} must not be negative"),
                PointLookup::Miss => {}
            }
        }
        c.check_invariants();
    }

    #[test]
    fn writes_inside_coverage_stay_fresh() {
        let c = RangeCache::new(1 << 20);
        c.insert_scan(&kv(0).0, &scan_result(0, 10), 10);
        // Overwrite a covered key.
        c.on_write(&kv(3).0, Some(&b("updated")));
        assert_eq!(c.get_point(&kv(3).0), PointLookup::Hit(b("updated")));
        // Insert a brand-new key inside coverage.
        c.on_write(b"key0003x", Some(&b("fresh")));
        assert_eq!(c.get_point(b"key0003x"), PointLookup::Hit(b("fresh")));
        // The new key appears in range results.
        match c.get_range(&kv(3).0, 3) {
            RangeLookup::Hit(v) => {
                assert_eq!(v[0].0, kv(3).0);
                assert_eq!(v[1].0.as_ref(), b"key0003x");
                assert_eq!(v[2].0, kv(4).0);
            }
            RangeLookup::Miss => panic!(),
        }
        // Delete a covered key: negative afterwards, and scans skip it.
        c.on_write(&kv(5).0, None);
        assert_eq!(c.get_point(&kv(5).0), PointLookup::NegativeHit);
        match c.get_range(&kv(4).0, 3) {
            RangeLookup::Hit(v) => {
                let keys: Vec<&[u8]> = v.iter().map(|(k, _)| k.as_ref()).collect();
                assert_eq!(keys, vec![&kv(4).0[..], &kv(6).0[..], &kv(7).0[..]]);
            }
            RangeLookup::Miss => panic!(),
        }
        // Writes outside coverage are ignored.
        c.on_write(b"zzz", Some(&b("x")));
        assert_eq!(c.get_point(b"zzz"), PointLookup::Miss);
        c.check_invariants();
    }

    #[test]
    fn empty_scan_result_caches_negatively() {
        let c = RangeCache::new(1 << 20);
        c.insert_scan(b"nokeyhere", &[], 0);
        assert_eq!(c.get_point(b"nokeyhere"), PointLookup::NegativeHit);
        c.check_invariants();
    }

    #[test]
    fn insert_point_enables_point_hits() {
        let c = RangeCache::new(1 << 20);
        c.insert_point(kv(7).0, kv(7).1);
        assert_eq!(c.get_point(&kv(7).0), PointLookup::Hit(kv(7).1));
        assert_eq!(c.get_point(&kv(8).0), PointLookup::Miss);
        // A degenerate single-key segment also answers 1-length scans.
        match c.get_range(&kv(7).0, 1) {
            RangeLookup::Hit(v) => assert_eq!(v.len(), 1),
            RangeLookup::Miss => panic!(),
        }
        c.check_invariants();
    }

    #[test]
    fn sharded_cache_serves_cross_boundary_scans() {
        let factory: RangePolicyFactory = Box::new(|| Box::new(LruPolicy::new()));
        let c = RangeCache::with_shards(1 << 20, vec![b("key0005"), b("key0010")], factory);
        // Scan result spanning all three shards.
        c.insert_scan(&kv(0).0, &scan_result(0, 15), 15);
        assert!(c.segment_count() >= 3, "coverage split across shards");
        match c.get_range(&kv(0).0, 15) {
            RangeLookup::Hit(v) => {
                assert_eq!(v.len(), 15);
                for (i, (k, _)) in v.iter().enumerate() {
                    assert_eq!(k, &kv(i).0);
                }
            }
            RangeLookup::Miss => panic!("cross-shard coverage must serve"),
        }
        // Point lookups land in the right shard.
        assert_eq!(c.get_point(&kv(7).0), PointLookup::Hit(kv(7).1));
        c.check_invariants();
    }

    #[test]
    fn stats_count_queries_not_entries() {
        let c = RangeCache::new(1 << 20);
        c.insert_scan(&kv(0).0, &scan_result(0, 16), 16);
        c.get_range(&kv(0).0, 16); // 1 hit even though 16 entries touched
        c.get_range(&kv(100).0, 4); // 1 miss
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(st.inserts, 16);
    }

    #[test]
    fn partial_lookup_returns_prefix_and_continuation() {
        let c = RangeCache::new(1 << 20);
        c.insert_scan(&kv(10).0, &scan_result(10, 8), 8);
        // Fully covered request.
        let (out, cont) = c.get_range_partial(&kv(10).0, 8);
        assert_eq!(out.len(), 8);
        assert!(cont.is_none());
        // Longer request: prefix + continuation at the coverage end, which
        // is the successor bound of the last cached key.
        let (out, cont) = c.get_range_partial(&kv(10).0, 20);
        assert_eq!(out.len(), 8);
        let cont = cont.unwrap();
        assert!(cont.as_ref() > kv(17).0.as_ref() && cont.as_ref() <= kv(18).0.as_ref());
        // Uncovered start: empty prefix, continuation = from.
        let (out, cont) = c.get_range_partial(&kv(50).0, 4);
        assert!(out.is_empty());
        assert_eq!(cont.unwrap(), kv(50).0);
        // n = 0 short-circuits.
        let (out, cont) = c.get_range_partial(&kv(10).0, 0);
        assert!(out.is_empty() && cont.is_none());
        c.check_invariants();
    }

    #[test]
    fn partial_lookup_plus_tail_reconstructs_full_scan() {
        // Simulate the engine's composed path: cached prefix + "LSM" tail
        // inserted at the continuation must produce growing coverage that
        // eventually serves the whole scan.
        let c = RangeCache::new(1 << 20);
        let full: Vec<(Bytes, Bytes)> = scan_result(0, 64);
        c.insert_scan(&full[0].0, &full[..16], 16);
        let (prefix, cont) = c.get_range_partial(&full[0].0, 64);
        assert_eq!(prefix.len(), 16);
        let cont = cont.unwrap();
        // "LSM scan" of the tail = everything at/after the continuation.
        let tail: Vec<(Bytes, Bytes)> = full.iter().filter(|(k, _)| *k >= cont).cloned().collect();
        assert_eq!(prefix.len() + tail.len(), 64, "no gap, no overlap");
        c.insert_scan(&cont, &tail, tail.len());
        match c.get_range(&full[0].0, 64) {
            RangeLookup::Hit(v) => assert_eq!(v, full),
            RangeLookup::Miss => panic!("merged coverage must serve the full scan"),
        }
        c.check_invariants();
    }

    #[test]
    fn resident_prefix_counts_leading_entries() {
        let c = RangeCache::new(1 << 20);
        let results = scan_result(0, 10);
        c.insert_scan(&results[0].0, &results, 4);
        assert_eq!(c.resident_prefix(&results), 4);
        assert_eq!(c.resident_prefix(&results[4..]), 0);
        assert_eq!(c.resident_prefix(&[]), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let c = RangeCache::new(1 << 20);
        c.insert_scan(&kv(0).0, &scan_result(0, 32), 32);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.segment_count(), 0);
        assert_eq!(c.used(), 0);
        assert_eq!(c.get_point(&kv(3).0), PointLookup::Miss);
        // Reusable afterwards.
        c.insert_scan(&kv(0).0, &scan_result(0, 4), 4);
        assert_eq!(c.len(), 4);
        c.check_invariants();
    }

    #[test]
    fn capacity_shrink_keeps_invariants() {
        let c = RangeCache::new(1 << 20);
        for start in (0..500).step_by(50) {
            c.insert_scan(&kv(start).0, &scan_result(start, 30), 30);
        }
        c.set_capacity(2000);
        assert!(c.used() <= 2000);
        c.check_invariants();
        // Everything still answers without panicking.
        for i in (0..500).step_by(7) {
            let _ = c.get_point(&kv(i).0);
            let _ = c.get_range(&kv(i).0, 5);
        }
        c.check_invariants();
    }
}
