//! Count-Min Sketch with saturation-halving decay.
//!
//! AdCache's point-lookup admission (paper Section 3.4) tracks miss
//! frequencies "in a compact data structure (e.g., Count-Min Sketch)". To
//! keep counts bounded and responsive, once a key's estimate reaches the
//! saturation point (default 8) every counter and the global sum are halved
//! — the TinyLFU aging mechanism — so stale or bursty keys fade while
//! consistently hot keys stay ranked on top.

/// A Count-Min Sketch over byte-string keys.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    /// `depth` rows of `width` counters each.
    rows: Vec<Vec<u32>>,
    width: usize,
    /// Sum of all recorded increments (halved on decay). The denominator of
    /// AdCache's normalized importance score.
    total: u64,
    /// Counter value that triggers a global halving.
    saturation: u32,
    /// Number of decays performed (observability).
    decays: u64,
}

fn hash_with_seed(data: &[u8], seed: u64) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h
}

impl CountMinSketch {
    /// Creates a sketch with `width` counters per row and `depth` rows.
    pub fn new(width: usize, depth: usize, saturation: u32) -> Self {
        assert!(width > 0 && depth > 0 && saturation > 1);
        CountMinSketch {
            rows: vec![vec![0u32; width]; depth],
            width,
            total: 0,
            saturation,
            decays: 0,
        }
    }

    /// A sketch sized for roughly `keys` distinct hot keys at ~1% relative
    /// error, with the paper's default saturation of 8.
    pub fn for_keys(keys: usize) -> Self {
        Self::new((keys * 4).next_power_of_two().max(1024), 4, 8)
    }

    /// Records one occurrence of `key` and returns its new estimate.
    /// Triggers a global halving when the estimate reaches saturation.
    pub fn increment(&mut self, key: &[u8]) -> u32 {
        let mut est = u32::MAX;
        for (row_no, row) in self.rows.iter_mut().enumerate() {
            let idx = hash_with_seed(key, row_no as u64) as usize % self.width;
            row[idx] = row[idx].saturating_add(1);
            est = est.min(row[idx]);
        }
        self.total += 1;
        if est >= self.saturation {
            self.decay();
            est = self.estimate(key);
        }
        est
    }

    /// Point estimate (upper bound) of `key`'s frequency.
    pub fn estimate(&self, key: &[u8]) -> u32 {
        let mut est = u32::MAX;
        for (row_no, row) in self.rows.iter().enumerate() {
            let idx = hash_with_seed(key, row_no as u64) as usize % self.width;
            est = est.min(row[idx]);
        }
        est
    }

    /// `key`'s frequency normalized by the global sum — the paper's
    /// "normalized importance" admission score.
    pub fn normalized_score(&self, key: &[u8]) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.estimate(key) as f64 / self.total as f64
    }

    /// Halves every counter and the global sum.
    pub fn decay(&mut self) {
        for row in &mut self.rows {
            for c in row.iter_mut() {
                *c >>= 1;
            }
        }
        self.total >>= 1;
        self.decays += 1;
    }

    /// Sum of all increments since the last decay cascade.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of halvings performed.
    pub fn decays(&self) -> u64 {
        self.decays
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.width * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_never_undercount_before_decay() {
        let mut s = CountMinSketch::new(1024, 4, u32::MAX - 1);
        for i in 0..200u32 {
            let key = format!("k{i}");
            for _ in 0..=(i % 5) {
                s.increment(key.as_bytes());
            }
        }
        for i in 0..200u32 {
            let key = format!("k{i}");
            assert!(s.estimate(key.as_bytes()) > (i % 5));
        }
    }

    #[test]
    fn hot_keys_rank_above_cold_keys() {
        let mut s = CountMinSketch::for_keys(1000);
        for _ in 0..6 {
            s.increment(b"hot");
        }
        s.increment(b"cold");
        assert!(s.normalized_score(b"hot") > s.normalized_score(b"cold"));
        assert!(s.normalized_score(b"never-seen") <= s.normalized_score(b"cold"));
    }

    #[test]
    fn saturation_triggers_halving() {
        let mut s = CountMinSketch::new(64, 4, 8);
        for _ in 0..7 {
            s.increment(b"k");
        }
        assert_eq!(s.decays(), 0);
        s.increment(b"k"); // reaches 8 -> decay
        assert_eq!(s.decays(), 1);
        assert_eq!(s.estimate(b"k"), 4);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn decay_preserves_relative_order() {
        let mut s = CountMinSketch::new(4096, 4, 8);
        for _ in 0..6 {
            s.increment(b"hot");
        }
        for i in 0..50u32 {
            s.increment(format!("cold{i}").as_bytes());
        }
        s.decay();
        assert!(s.estimate(b"hot") > s.estimate(b"cold7"));
    }

    #[test]
    fn one_off_keys_have_tiny_scores() {
        let mut s = CountMinSketch::for_keys(10_000);
        for _ in 0..7 {
            s.increment(b"hot");
        }
        for i in 0..1000u32 {
            s.increment(format!("one-off-{i}").as_bytes());
        }
        let hot = s.normalized_score(b"hot");
        let one_off = s.normalized_score(b"one-off-5");
        assert!(hot > 4.0 * one_off, "hot={hot} one_off={one_off}");
    }

    #[test]
    fn memory_footprint_is_reported() {
        let s = CountMinSketch::new(1024, 4, 8);
        assert_eq!(s.memory_bytes(), 1024 * 4 * 4);
    }

    #[test]
    #[should_panic]
    fn zero_width_is_rejected() {
        CountMinSketch::new(0, 4, 8);
    }
}
