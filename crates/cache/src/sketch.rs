//! Count-Min Sketch with saturation-halving decay.
//!
//! AdCache's point-lookup admission (paper Section 3.4) tracks miss
//! frequencies "in a compact data structure (e.g., Count-Min Sketch)". To
//! keep counts bounded and responsive, once a key's estimate reaches the
//! saturation point (default 8) every counter and the global sum are halved
//! — the TinyLFU aging mechanism — so stale or bursty keys fade while
//! consistently hot keys stay ranked on top.
//!
//! The row hashes are salt-able: an adversary who knows the hash function
//! can precompute keys that collide with a victim key in every row and
//! inflate its estimate (or saturate the counters). [`CountMinSketch::reset`]
//! zeroes the counters *and* re-seeds every row with a caller-chosen salt,
//! invalidating any precomputed collision set at the cost of forgetting the
//! (already poisoned) frequency history.

/// A Count-Min Sketch over byte-string keys.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    /// `depth` rows of `width` counters each.
    rows: Vec<Vec<u32>>,
    width: usize,
    /// Sum of all recorded increments (halved on decay). The denominator of
    /// AdCache's normalized importance score.
    total: u64,
    /// Counter value that triggers a global halving.
    saturation: u32,
    /// Number of decays performed (observability).
    decays: u64,
    /// XORed into every row seed; changed on [`reset`](Self::reset) so
    /// precomputed collisions stop working.
    salt: u64,
    /// Number of resets performed (0 = the unsalted construction epoch).
    epoch: u64,
    /// Counters currently nonzero, maintained incrementally — the
    /// numerator of [`fill_ratio`](Self::fill_ratio).
    nonzero: u64,
    /// Increments since the last reset.
    epoch_increments: u64,
    /// Decays since the last reset.
    epoch_decays: u64,
}

fn hash_with_seed(data: &[u8], seed: u64) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h
}

/// Smallest width [`CountMinSketch::for_keys`] will produce.
pub const MIN_SKETCH_WIDTH: usize = 1024;

/// Largest width [`CountMinSketch::for_keys`] will produce (64 Mi counters
/// per row = 1 GiB of sketch at depth 4 — already absurd; beyond this the
/// `keys * 4` multiply could also overflow on 32-bit `usize`).
pub const MAX_SKETCH_WIDTH: usize = 1 << 26;

impl CountMinSketch {
    /// Creates a sketch with `width` counters per row and `depth` rows.
    pub fn new(width: usize, depth: usize, saturation: u32) -> Self {
        assert!(width > 0 && depth > 0 && saturation > 1);
        CountMinSketch {
            rows: vec![vec![0u32; width]; depth],
            width,
            total: 0,
            saturation,
            decays: 0,
            salt: 0,
            epoch: 0,
            nonzero: 0,
            epoch_increments: 0,
            epoch_decays: 0,
        }
    }

    /// A sketch sized for roughly `keys` distinct hot keys at ~1% relative
    /// error, with the paper's default saturation of 8. Degenerate inputs
    /// are clamped instead of panicking: `keys == 0` gets the minimum
    /// width, and huge values saturate at [`MAX_SKETCH_WIDTH`] rather than
    /// overflowing the `keys * 4` sizing multiply.
    pub fn for_keys(keys: usize) -> Self {
        let width = keys
            .saturating_mul(4)
            .clamp(MIN_SKETCH_WIDTH, MAX_SKETCH_WIDTH)
            .next_power_of_two()
            .min(MAX_SKETCH_WIDTH);
        Self::new(width, 4, 8)
    }

    /// The per-row hash seed: row number XOR the epoch salt. With the
    /// construction salt of 0 this is exactly the historical seeding, so
    /// un-reset sketches hash identically to older builds.
    fn row_seed(&self, row_no: usize) -> u64 {
        row_no as u64 ^ self.salt
    }

    /// Records one occurrence of `key` and returns its new estimate.
    /// Triggers a global halving when the estimate reaches saturation.
    pub fn increment(&mut self, key: &[u8]) -> u32 {
        let mut est = u32::MAX;
        for row_no in 0..self.rows.len() {
            let idx = hash_with_seed(key, self.row_seed(row_no)) as usize % self.width;
            let c = &mut self.rows[row_no][idx];
            if *c == 0 {
                self.nonzero += 1;
            }
            *c = c.saturating_add(1);
            est = est.min(*c);
        }
        self.total += 1;
        self.epoch_increments += 1;
        if est >= self.saturation {
            self.decay();
            est = self.estimate(key);
        }
        est
    }

    /// Point estimate (upper bound) of `key`'s frequency.
    pub fn estimate(&self, key: &[u8]) -> u32 {
        let mut est = u32::MAX;
        for (row_no, row) in self.rows.iter().enumerate() {
            let idx = hash_with_seed(key, self.row_seed(row_no)) as usize % self.width;
            est = est.min(row[idx]);
        }
        est
    }

    /// `key`'s frequency normalized by the global sum — the paper's
    /// "normalized importance" admission score.
    pub fn normalized_score(&self, key: &[u8]) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.estimate(key) as f64 / self.total as f64
    }

    /// Halves every counter and the global sum.
    pub fn decay(&mut self) {
        for row in &mut self.rows {
            for c in row.iter_mut() {
                if *c == 1 {
                    self.nonzero -= 1;
                }
                *c >>= 1;
            }
        }
        self.total >>= 1;
        self.decays += 1;
        self.epoch_decays += 1;
    }

    /// Zeroes every counter and re-seeds the row hashes with `salt`,
    /// starting a new epoch. The cumulative [`decays`](Self::decays) count
    /// survives (it is a lifetime observability counter); the per-epoch
    /// counters restart.
    pub fn reset(&mut self, salt: u64) {
        for row in &mut self.rows {
            row.iter_mut().for_each(|c| *c = 0);
        }
        self.total = 0;
        self.nonzero = 0;
        self.salt = salt;
        self.epoch += 1;
        self.epoch_increments = 0;
        self.epoch_decays = 0;
    }

    /// Sum of all increments since the last decay cascade.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of halvings performed over the sketch's lifetime.
    pub fn decays(&self) -> u64 {
        self.decays
    }

    /// The salt seeding the current epoch's row hashes.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Number of resets performed (0 until the first
    /// [`reset`](Self::reset)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fraction of counters currently nonzero, in `[0, 1]`. A healthy
    /// zipfian workload leaves most counters empty; a sketch near full is
    /// being saturated.
    pub fn fill_ratio(&self) -> f64 {
        self.nonzero as f64 / (self.rows.len() * self.width) as f64
    }

    /// Increments recorded since the last reset.
    pub fn epoch_increments(&self) -> u64 {
        self.epoch_increments
    }

    /// Decays performed since the last reset.
    pub fn epoch_decays(&self) -> u64 {
        self.epoch_decays
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.width * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_never_undercount_before_decay() {
        let mut s = CountMinSketch::new(1024, 4, u32::MAX - 1);
        for i in 0..200u32 {
            let key = format!("k{i}");
            for _ in 0..=(i % 5) {
                s.increment(key.as_bytes());
            }
        }
        for i in 0..200u32 {
            let key = format!("k{i}");
            assert!(s.estimate(key.as_bytes()) > (i % 5));
        }
    }

    #[test]
    fn hot_keys_rank_above_cold_keys() {
        let mut s = CountMinSketch::for_keys(1000);
        for _ in 0..6 {
            s.increment(b"hot");
        }
        s.increment(b"cold");
        assert!(s.normalized_score(b"hot") > s.normalized_score(b"cold"));
        assert!(s.normalized_score(b"never-seen") <= s.normalized_score(b"cold"));
    }

    #[test]
    fn saturation_triggers_halving() {
        let mut s = CountMinSketch::new(64, 4, 8);
        for _ in 0..7 {
            s.increment(b"k");
        }
        assert_eq!(s.decays(), 0);
        s.increment(b"k"); // reaches 8 -> decay
        assert_eq!(s.decays(), 1);
        assert_eq!(s.estimate(b"k"), 4);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn decay_preserves_relative_order() {
        let mut s = CountMinSketch::new(4096, 4, 8);
        for _ in 0..6 {
            s.increment(b"hot");
        }
        for i in 0..50u32 {
            s.increment(format!("cold{i}").as_bytes());
        }
        s.decay();
        assert!(s.estimate(b"hot") > s.estimate(b"cold7"));
    }

    #[test]
    fn one_off_keys_have_tiny_scores() {
        let mut s = CountMinSketch::for_keys(10_000);
        for _ in 0..7 {
            s.increment(b"hot");
        }
        for i in 0..1000u32 {
            s.increment(format!("one-off-{i}").as_bytes());
        }
        let hot = s.normalized_score(b"hot");
        let one_off = s.normalized_score(b"one-off-5");
        assert!(hot > 4.0 * one_off, "hot={hot} one_off={one_off}");
    }

    #[test]
    fn memory_footprint_is_reported() {
        let s = CountMinSketch::new(1024, 4, 8);
        assert_eq!(s.memory_bytes(), 1024 * 4 * 4);
    }

    #[test]
    #[should_panic]
    fn zero_width_is_rejected() {
        CountMinSketch::new(0, 4, 8);
    }

    #[test]
    fn for_keys_clamps_degenerate_sizes() {
        assert_eq!(CountMinSketch::for_keys(0).memory_bytes(), 1024 * 4 * 4);
        assert_eq!(CountMinSketch::for_keys(1).memory_bytes(), 1024 * 4 * 4);
        // A huge key count must neither overflow the sizing multiply nor
        // allocate an unbounded sketch.
        let s = CountMinSketch::for_keys(usize::MAX / 2);
        assert_eq!(s.memory_bytes(), MAX_SKETCH_WIDTH * 4 * 4);
        // Mid-range sizing is unchanged from the historical formula.
        assert_eq!(
            CountMinSketch::for_keys(100_000).memory_bytes(),
            (100_000usize * 4).next_power_of_two() * 4 * 4
        );
    }

    #[test]
    fn reset_changes_hash_layout_and_zeroes_counters() {
        let mut s = CountMinSketch::new(1024, 4, 8);
        for _ in 0..5 {
            s.increment(b"victim");
        }
        assert!(s.estimate(b"victim") >= 5);
        assert!(s.fill_ratio() > 0.0);
        s.reset(0xDEAD_BEEF);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.salt(), 0xDEAD_BEEF);
        assert_eq!(s.estimate(b"victim"), 0);
        assert_eq!(s.total(), 0);
        assert_eq!(s.fill_ratio(), 0.0);
        assert_eq!(s.epoch_increments(), 0);
        // The salted epoch still counts correctly.
        for _ in 0..3 {
            s.increment(b"victim");
        }
        assert_eq!(s.estimate(b"victim"), 3);
        assert_eq!(s.epoch_increments(), 3);
    }

    #[test]
    fn fill_ratio_tracks_decay_to_zero() {
        let mut s = CountMinSketch::new(64, 2, u32::MAX - 1);
        s.increment(b"a");
        let filled = s.fill_ratio();
        assert!(filled > 0.0);
        s.decay(); // every counter was 1 -> all drop to 0
        assert_eq!(s.fill_ratio(), 0.0);
        assert_eq!(s.epoch_decays(), 1);
    }
}
