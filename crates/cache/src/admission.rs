//! Admission control (paper Section 3.4).
//!
//! Two mechanisms guard the caches against pollution:
//!
//! - **Frequency-based admission for point lookups** —
//!   [`PointAdmission`]: on a miss the key's counter in a Count-Min
//!   Sketch is incremented and the key is admitted only when its
//!   *normalized importance* (frequency over the global missed-key sum)
//!   clears a threshold. The threshold is not fixed: AdCache's RL agent
//!   retunes it every window.
//! - **Partial admission for range scans** — [`ScanAdmission`]: a scan of
//!   length `l ≤ a` is admitted whole; a longer scan contributes only
//!   `a + ⌈b·(l−a)⌉` leading entries, so infrequent long scans have a
//!   bounded cache footprint while overlapping hot scans still converge to
//!   full residency. `a` and `b` are likewise learned online.

use crate::sketch::CountMinSketch;
use adcache_obs::{Counter, Event, Obs};

/// Anomaly heuristic that auto-resets (and re-salts) the admission sketch
/// when its saturation/decay telemetry looks like a deliberate pollution
/// attack rather than organic traffic.
///
/// Two signals, both checked every `check_every` admits over the *delta*
/// since the previous check (so a long healthy history cannot mask a fresh
/// attack):
///
/// - **decay churn** — a zipfian workload saturates its handful of hot
///   keys slowly (hundreds of increments between decay sweeps, because the
///   miss stream feeding admission is mostly cold-key residue); a targeted
///   key-churn or collision attack concentrates increments on a handful of
///   counters and decays every few dozen. More than one decay sweep per
///   `min_decay_interval` increments in a window is anomalous.
/// - **fill ratio** — a right-sized sketch (4 counters per expected key)
///   stays mostly empty: even if every expected key misses once, row
///   occupancy stays under ~25%. `fill_ratio > max_fill` means the
///   counter space is being flooded with distinct keys the sketch was
///   never sized for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchGuard {
    /// Master switch; `false` restores the unguarded behavior.
    pub enabled: bool,
    /// How many admits between anomaly checks.
    pub check_every: u64,
    /// Flag a window as anomalous when it saw more than one decay per this
    /// many increments.
    pub min_decay_interval: u64,
    /// Flag when the fraction of nonzero counters exceeds this.
    pub max_fill: f64,
}

impl Default for SketchGuard {
    fn default() -> Self {
        SketchGuard {
            enabled: true,
            check_every: 4096,
            min_decay_interval: 160,
            max_fill: 0.5,
        }
    }
}

impl SketchGuard {
    /// A disabled guard (checks never run).
    pub fn off() -> Self {
        SketchGuard {
            enabled: false,
            ..Self::default()
        }
    }
}

/// splitmix64 — used to derive a fresh, unpredictable-to-the-workload salt
/// for each reset epoch from the epoch number.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Frequency-gated admission for point-lookup results.
#[derive(Debug)]
pub struct PointAdmission {
    sketch: CountMinSketch,
    threshold: f64,
    admitted: u64,
    rejected: u64,
    guard: SketchGuard,
    /// Admits since the last guard check.
    since_check: u64,
    /// Sketch decay count at the last guard check.
    checked_decays: u64,
    /// Auto-resets performed.
    resets: u64,
    obs: Obs,
    reset_counter: Counter,
}

impl PointAdmission {
    /// Creates the filter sized for roughly `expected_keys` hot keys.
    /// `threshold` is the initial normalized-importance cut-off. The
    /// anomaly guard defaults on; see [`with_guard`](Self::with_guard).
    pub fn new(expected_keys: usize, threshold: f64) -> Self {
        Self::with_guard(expected_keys, threshold, SketchGuard::default())
    }

    /// [`new`](Self::new) with an explicit guard configuration.
    pub fn with_guard(expected_keys: usize, threshold: f64, guard: SketchGuard) -> Self {
        PointAdmission {
            sketch: CountMinSketch::for_keys(expected_keys),
            threshold,
            admitted: 0,
            rejected: 0,
            guard,
            since_check: 0,
            checked_decays: 0,
            resets: 0,
            obs: Obs::disabled(),
            reset_counter: Counter::default(),
        }
    }

    /// Attaches an observability handle; each guard reset then journals an
    /// [`Event::SketchReset`] and bumps the `cache.sketch.resets` counter.
    pub fn set_obs(&mut self, obs: Obs) {
        self.reset_counter = obs.counter("cache.sketch.resets");
        self.obs = obs;
    }

    /// Records a miss on `key` and decides whether to admit it.
    pub fn admit(&mut self, key: &[u8]) -> bool {
        let freq = self.sketch.increment(key);
        let total = self.sketch.total().max(1);
        let score = freq as f64 / total as f64;
        let admit = score >= self.threshold;
        if admit {
            self.admitted += 1;
        } else {
            self.rejected += 1;
        }
        self.since_check += 1;
        if self.guard.enabled && self.since_check >= self.guard.check_every {
            self.check_anomaly();
        }
        admit
    }

    /// The guard check: compares this window's decay/fill telemetry to the
    /// anomaly thresholds and resets the sketch with a fresh salt if it
    /// trips.
    fn check_anomaly(&mut self) {
        let window = self.since_check;
        let delta_decays = self.sketch.decays() - self.checked_decays;
        let fill = self.sketch.fill_ratio();
        let decay_flood = delta_decays > window / self.guard.min_decay_interval.max(1);
        let saturated = fill > self.guard.max_fill;
        if decay_flood || saturated {
            let epoch = self.sketch.epoch() + 1;
            // Salt derived from the epoch: deterministic for replayable
            // tests, but unknowable to a client that cannot observe resets.
            let salt = splitmix64(0xAD5A_17ED ^ epoch);
            self.obs.emit(|| Event::SketchReset {
                epoch,
                decays: delta_decays,
                fill_pct: (fill * 100.0) as u64,
                increments: window,
            });
            self.reset_counter.inc();
            self.sketch.reset(salt);
            self.resets += 1;
        }
        self.since_check = 0;
        self.checked_decays = self.sketch.decays();
    }

    /// Re-salts the sketch's hash rows with an explicit salt, discarding
    /// its history. Tenant partitions salt each tenant's sketch with a
    /// tenant-derived value at construction, so hash collisions one
    /// tenant engineers against its own sketch do not transfer to
    /// another tenant's admission state.
    pub fn resalt(&mut self, salt: u64) {
        self.sketch.reset(salt);
    }

    /// Retunes the threshold (called by the RL controller each window).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold.max(0.0);
    }

    /// The current threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Reconfigures the anomaly guard.
    pub fn set_guard(&mut self, guard: SketchGuard) {
        self.guard = guard;
    }

    /// The active guard configuration.
    pub fn guard(&self) -> SketchGuard {
        self.guard
    }

    /// Auto-resets performed by the guard.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// `(admitted, rejected)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.admitted, self.rejected)
    }

    /// Read access to the underlying sketch.
    pub fn sketch(&self) -> &CountMinSketch {
        &self.sketch
    }
}

/// Partial admission for scan results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanAdmission {
    /// Scans up to this length are admitted whole.
    pub a: usize,
    /// Fraction of the excess `(l - a)` admitted for longer scans.
    pub b: f64,
}

impl ScanAdmission {
    /// Creates the policy; `b` is clamped to `[0, 1]`.
    pub fn new(a: usize, b: f64) -> Self {
        ScanAdmission {
            a,
            b: b.clamp(0.0, 1.0),
        }
    }

    /// How many leading entries of a scan of length `l` to admit.
    pub fn admitted_len(&self, l: usize) -> usize {
        if l <= self.a {
            l
        } else {
            let extra = (self.b * (l - self.a) as f64).ceil() as usize;
            (self.a + extra).min(l)
        }
    }

    /// The "scan threshold" reported in the paper's Figure 10: the expected
    /// admitted length for scans of the observed average length `l`.
    pub fn effective_threshold(&self, avg_scan_len: f64) -> f64 {
        if avg_scan_len <= self.a as f64 {
            avg_scan_len
        } else {
            self.a as f64 + self.b * (avg_scan_len - self.a as f64)
        }
    }
}

impl Default for ScanAdmission {
    /// The paper initializes `a` to the average short-scan length (16).
    fn default() -> Self {
        ScanAdmission { a: 16, b: 0.25 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_off_keys_are_rejected_hot_keys_admitted() {
        let mut adm = PointAdmission::new(10_000, 0.002);
        // Warm the sketch with noise.
        for i in 0..2000u32 {
            adm.admit(format!("noise-{i}").as_bytes());
        }
        // A key seen repeatedly crosses the normalized threshold.
        let mut admitted_hot = false;
        for _ in 0..6 {
            admitted_hot = adm.admit(b"hot-key");
        }
        assert!(admitted_hot);
        assert!(!adm.admit(b"fresh-one-off"));
        let (a, r) = adm.counters();
        assert!(a >= 1 && r >= 1);
    }

    #[test]
    fn zero_threshold_admits_everything() {
        let mut adm = PointAdmission::new(100, 0.0);
        for i in 0..50u32 {
            assert!(adm.admit(format!("k{i}").as_bytes()));
        }
    }

    #[test]
    fn threshold_is_tunable_at_runtime() {
        let mut adm = PointAdmission::new(100, 1.0);
        // The very first key is a "monopoly" (score 1.0) and passes even the
        // strictest threshold; once a second key shares the sum, neither can
        // reach 1.0 again.
        assert!(adm.admit(b"warm"));
        assert!(!adm.admit(b"x"), "threshold 1.0 rejects non-monopoly keys");
        adm.set_threshold(0.0);
        assert!(adm.admit(b"x"));
        assert_eq!(adm.threshold(), 0.0);
        adm.set_threshold(-5.0);
        assert_eq!(adm.threshold(), 0.0, "negative thresholds clamp to zero");
    }

    #[test]
    fn short_scans_admitted_whole() {
        let s = ScanAdmission::new(16, 0.25);
        assert_eq!(s.admitted_len(1), 1);
        assert_eq!(s.admitted_len(16), 16);
    }

    #[test]
    fn long_scans_admit_partial_prefix() {
        let s = ScanAdmission::new(16, 0.25);
        assert_eq!(s.admitted_len(64), 16 + 12); // 16 + ceil(0.25*48)
        assert_eq!(s.admitted_len(17), 17); // 16 + ceil(0.25) = 17
        let s = ScanAdmission::new(16, 0.0);
        assert_eq!(s.admitted_len(64), 16);
        let s = ScanAdmission::new(16, 1.0);
        assert_eq!(s.admitted_len(64), 64);
    }

    #[test]
    fn b_is_clamped() {
        let s = ScanAdmission::new(8, 7.5);
        assert_eq!(s.b, 1.0);
        let s = ScanAdmission::new(8, -1.0);
        assert_eq!(s.b, 0.0);
    }

    #[test]
    fn effective_threshold_matches_formula() {
        let s = ScanAdmission::new(16, 0.25);
        assert!((s.effective_threshold(64.0) - 28.0).abs() < 1e-9);
        assert!((s.effective_threshold(8.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn guard_resets_under_decay_flood() {
        // Hammering one key drives a decay every few increments — far
        // past the one-per-160 anomaly bar.
        let mut adm = PointAdmission::with_guard(
            1000,
            0.0,
            SketchGuard {
                check_every: 256,
                ..SketchGuard::default()
            },
        );
        for _ in 0..1024 {
            adm.admit(b"churn-victim");
        }
        assert!(adm.resets() >= 1, "decay flood must trip the guard");
        // The poisoned history is gone and the sketch is salted.
        assert_ne!(adm.sketch().salt(), 0);
        assert!(adm.sketch().epoch() >= 1);
    }

    #[test]
    fn guard_stays_quiet_on_zipfian_traffic() {
        let mut adm = PointAdmission::new(10_000, 0.002);
        // A skewed-but-organic stream: 100 hot keys cycled, plus noise.
        for round in 0..300u32 {
            for k in 0..100u32 {
                adm.admit(format!("hot-{k}").as_bytes());
            }
            adm.admit(format!("noise-{round}").as_bytes());
        }
        assert_eq!(adm.resets(), 0, "organic skew must not trip the guard");
    }

    #[test]
    fn disabled_guard_never_resets() {
        let mut adm = PointAdmission::with_guard(1000, 0.0, SketchGuard::off());
        for _ in 0..10_000 {
            adm.admit(b"churn-victim");
        }
        assert_eq!(adm.resets(), 0);
        assert_eq!(adm.sketch().epoch(), 0);
    }

    #[test]
    fn guard_resets_under_distinct_key_flood() {
        // A one-hit-wonder storm with far more distinct keys than the
        // sketch was sized for fills the counter space past max_fill.
        let mut adm = PointAdmission::with_guard(
            64, // sketch width clamps to the 1024 minimum => 4096 counters
            0.0,
            SketchGuard {
                check_every: 4096,
                ..SketchGuard::default()
            },
        );
        for i in 0..20_000u64 {
            adm.admit(format!("one-hit-{i}").as_bytes());
        }
        assert!(adm.resets() >= 1, "fill flood must trip the guard");
    }
}
