//! Admission control (paper Section 3.4).
//!
//! Two mechanisms guard the caches against pollution:
//!
//! - **Frequency-based admission for point lookups** —
//!   [`PointAdmission`]: on a miss the key's counter in a Count-Min
//!   Sketch is incremented and the key is admitted only when its
//!   *normalized importance* (frequency over the global missed-key sum)
//!   clears a threshold. The threshold is not fixed: AdCache's RL agent
//!   retunes it every window.
//! - **Partial admission for range scans** — [`ScanAdmission`]: a scan of
//!   length `l ≤ a` is admitted whole; a longer scan contributes only
//!   `a + ⌈b·(l−a)⌉` leading entries, so infrequent long scans have a
//!   bounded cache footprint while overlapping hot scans still converge to
//!   full residency. `a` and `b` are likewise learned online.

use crate::sketch::CountMinSketch;

/// Frequency-gated admission for point-lookup results.
#[derive(Debug)]
pub struct PointAdmission {
    sketch: CountMinSketch,
    threshold: f64,
    admitted: u64,
    rejected: u64,
}

impl PointAdmission {
    /// Creates the filter sized for roughly `expected_keys` hot keys.
    /// `threshold` is the initial normalized-importance cut-off.
    pub fn new(expected_keys: usize, threshold: f64) -> Self {
        PointAdmission {
            sketch: CountMinSketch::for_keys(expected_keys),
            threshold,
            admitted: 0,
            rejected: 0,
        }
    }

    /// Records a miss on `key` and decides whether to admit it.
    pub fn admit(&mut self, key: &[u8]) -> bool {
        let freq = self.sketch.increment(key);
        let total = self.sketch.total().max(1);
        let score = freq as f64 / total as f64;
        let admit = score >= self.threshold;
        if admit {
            self.admitted += 1;
        } else {
            self.rejected += 1;
        }
        admit
    }

    /// Retunes the threshold (called by the RL controller each window).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold.max(0.0);
    }

    /// The current threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// `(admitted, rejected)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.admitted, self.rejected)
    }

    /// Read access to the underlying sketch.
    pub fn sketch(&self) -> &CountMinSketch {
        &self.sketch
    }
}

/// Partial admission for scan results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanAdmission {
    /// Scans up to this length are admitted whole.
    pub a: usize,
    /// Fraction of the excess `(l - a)` admitted for longer scans.
    pub b: f64,
}

impl ScanAdmission {
    /// Creates the policy; `b` is clamped to `[0, 1]`.
    pub fn new(a: usize, b: f64) -> Self {
        ScanAdmission {
            a,
            b: b.clamp(0.0, 1.0),
        }
    }

    /// How many leading entries of a scan of length `l` to admit.
    pub fn admitted_len(&self, l: usize) -> usize {
        if l <= self.a {
            l
        } else {
            let extra = (self.b * (l - self.a) as f64).ceil() as usize;
            (self.a + extra).min(l)
        }
    }

    /// The "scan threshold" reported in the paper's Figure 10: the expected
    /// admitted length for scans of the observed average length `l`.
    pub fn effective_threshold(&self, avg_scan_len: f64) -> f64 {
        if avg_scan_len <= self.a as f64 {
            avg_scan_len
        } else {
            self.a as f64 + self.b * (avg_scan_len - self.a as f64)
        }
    }
}

impl Default for ScanAdmission {
    /// The paper initializes `a` to the average short-scan length (16).
    fn default() -> Self {
        ScanAdmission { a: 16, b: 0.25 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_off_keys_are_rejected_hot_keys_admitted() {
        let mut adm = PointAdmission::new(10_000, 0.002);
        // Warm the sketch with noise.
        for i in 0..2000u32 {
            adm.admit(format!("noise-{i}").as_bytes());
        }
        // A key seen repeatedly crosses the normalized threshold.
        let mut admitted_hot = false;
        for _ in 0..6 {
            admitted_hot = adm.admit(b"hot-key");
        }
        assert!(admitted_hot);
        assert!(!adm.admit(b"fresh-one-off"));
        let (a, r) = adm.counters();
        assert!(a >= 1 && r >= 1);
    }

    #[test]
    fn zero_threshold_admits_everything() {
        let mut adm = PointAdmission::new(100, 0.0);
        for i in 0..50u32 {
            assert!(adm.admit(format!("k{i}").as_bytes()));
        }
    }

    #[test]
    fn threshold_is_tunable_at_runtime() {
        let mut adm = PointAdmission::new(100, 1.0);
        // The very first key is a "monopoly" (score 1.0) and passes even the
        // strictest threshold; once a second key shares the sum, neither can
        // reach 1.0 again.
        assert!(adm.admit(b"warm"));
        assert!(!adm.admit(b"x"), "threshold 1.0 rejects non-monopoly keys");
        adm.set_threshold(0.0);
        assert!(adm.admit(b"x"));
        assert_eq!(adm.threshold(), 0.0);
        adm.set_threshold(-5.0);
        assert_eq!(adm.threshold(), 0.0, "negative thresholds clamp to zero");
    }

    #[test]
    fn short_scans_admitted_whole() {
        let s = ScanAdmission::new(16, 0.25);
        assert_eq!(s.admitted_len(1), 1);
        assert_eq!(s.admitted_len(16), 16);
    }

    #[test]
    fn long_scans_admit_partial_prefix() {
        let s = ScanAdmission::new(16, 0.25);
        assert_eq!(s.admitted_len(64), 16 + 12); // 16 + ceil(0.25*48)
        assert_eq!(s.admitted_len(17), 17); // 16 + ceil(0.25) = 17
        let s = ScanAdmission::new(16, 0.0);
        assert_eq!(s.admitted_len(64), 16);
        let s = ScanAdmission::new(16, 1.0);
        assert_eq!(s.admitted_len(64), 64);
    }

    #[test]
    fn b_is_clamped() {
        let s = ScanAdmission::new(8, 7.5);
        assert_eq!(s.b, 1.0);
        let s = ScanAdmission::new(8, -1.0);
        assert_eq!(s.b, 0.0);
    }

    #[test]
    fn effective_threshold_matches_formula() {
        let s = ScanAdmission::new(16, 0.25);
        assert!((s.effective_threshold(64.0) - 28.0).abs() < 1e-9);
        assert!((s.effective_threshold(8.0) - 8.0).abs() < 1e-9);
    }
}
