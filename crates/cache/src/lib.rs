//! # adcache-cache — cache structures for LSM-tree key-value stores
//!
//! The cache substrate of the AdCache reproduction (EDBT 2026):
//!
//! - [`block_cache::BlockCache`] — sharded, byte-charged cache of decoded
//!   SSTable blocks (RocksDB-style), invalidated by compaction;
//! - [`kv_cache::KvCache`] — point-result cache (Row Cache analogue);
//! - [`range_cache::RangeCache`] — result cache with covered-segment
//!   tracking, serving point *and* range lookups across compactions;
//! - [`policy`] — pluggable eviction: LRU, LFU (plus CR-LFU), FIFO, ARC,
//!   LeCaR and Cacheus, behind one [`policy::Policy`] trait;
//! - [`sketch::CountMinSketch`] + [`admission`] — TinyLFU-style frequency
//!   admission for point lookups and partial admission for scans, the two
//!   mechanisms AdCache's RL agent tunes online.

#![warn(missing_docs)]

pub mod admission;
pub mod block_cache;
pub mod container;
pub mod kv_cache;
pub mod policy;
pub mod prefetch;
pub mod range_cache;
pub mod sketch;

pub use admission::{PointAdmission, ScanAdmission, SketchGuard};
pub use block_cache::{BlockCache, ScopedBlockProvider};
pub use container::{CacheStats, ChargedCache};
pub use kv_cache::KvCache;
pub use policy::{
    ArcPolicy, CacheusPolicy, ClockPolicy, FifoPolicy, LeCaRPolicy, LfuPolicy, LruPolicy, Policy,
    TieBreak, TwoQPolicy,
};
pub use prefetch::CompactionPrefetcher;
pub use range_cache::{PointLookup, RangeCache, RangeLookup, RangePolicyFactory};
pub use sketch::CountMinSketch;
