//! Post-compaction block prefetching (Leaper-inspired; paper Section 2.2).
//!
//! Compactions invalidate every cached block of the files they rewrite —
//! the block cache's structural weakness. Leaper (VLDB '20) mitigates it by
//! re-populating the cache right after a compaction. This module provides a
//! lightweight version of that idea: a [`CompactionPrefetcher`] listener
//! that, after each rewriting compaction, loads the leading blocks of every
//! output file straight into the block cache.
//!
//! Prefetch reads are device I/O but are *not* query misses; the engine
//! subtracts [`CompactionPrefetcher::blocks_prefetched`] from its SST-read
//! metric, mirroring how compaction I/O is excluded. Trivial moves are
//! skipped — their blocks were never invalidated.

use crate::block_cache::BlockCache;
use adcache_lsm::compaction::{CompactionEvent, CompactionListener};
use adcache_lsm::sstable::decode_stored_block;
use adcache_lsm::{BlockRef, Storage, TableMeta};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Reloads the first `blocks_per_file` blocks of each compaction output
/// into the shared block cache.
pub struct CompactionPrefetcher {
    cache: Arc<BlockCache>,
    storage: Arc<dyn Storage>,
    blocks_per_file: usize,
    prefetched: AtomicU64,
}

impl CompactionPrefetcher {
    /// Creates a prefetcher over `cache` and `storage`.
    pub fn new(cache: Arc<BlockCache>, storage: Arc<dyn Storage>, blocks_per_file: usize) -> Self {
        CompactionPrefetcher {
            cache,
            storage,
            blocks_per_file,
            prefetched: AtomicU64::new(0),
        }
    }

    /// Total blocks loaded by prefetching so far (subtract from raw device
    /// reads when computing query-path SST reads).
    pub fn blocks_prefetched(&self) -> u64 {
        self.prefetched.load(Ordering::Relaxed)
    }
}

impl CompactionListener for CompactionPrefetcher {
    fn on_compaction(&self, event: &CompactionEvent) {
        if event.trivial_move || self.blocks_per_file == 0 {
            return;
        }
        for &file in &event.new_files {
            // Metadata reads are pinned-memory operations, not data I/O.
            let Ok(meta_blob) = self.storage.read_meta(file) else {
                continue;
            };
            let Ok(meta) = TableMeta::decode(&meta_blob) else {
                continue;
            };
            let n = (self.blocks_per_file as u32).min(meta.num_blocks);
            for block_no in 0..n {
                let Ok(stored) = self.storage.read_block(file, block_no) else {
                    break;
                };
                let Ok(block) = decode_stored_block(stored) else {
                    break;
                };
                self.cache
                    .insert_block(BlockRef::new(file, block_no), Arc::new(block));
                self.prefetched.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcache_lsm::{LsmTree, MemStorage, Options};
    use bytes::Bytes;

    #[test]
    fn prefetches_after_rewriting_compactions() {
        let storage: Arc<MemStorage> = Arc::new(MemStorage::new());
        let db = LsmTree::new(Options::small(), storage.clone()).unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20, 2));
        db.add_compaction_listener(cache.clone());
        let prefetcher = Arc::new(CompactionPrefetcher::new(
            cache.clone(),
            storage.clone() as Arc<dyn Storage>,
            2,
        ));
        db.add_compaction_listener(prefetcher.clone());

        for i in 0..20_000u64 {
            db.put(
                Bytes::from(format!("user{:020}", i % 2000)),
                Bytes::from(format!("v{i}")),
            )
            .unwrap();
        }
        assert!(db.stats().compactions() > 0);
        assert!(prefetcher.blocks_prefetched() > 0, "prefetcher never fired");
        // The cache holds blocks for *live* files without any query having
        // run (they came from prefetching).
        assert!(!cache.is_empty());
        // Query-path accounting can exclude the prefetch reads.
        let query_reads = db
            .query_block_reads()
            .saturating_sub(prefetcher.blocks_prefetched());
        assert_eq!(
            query_reads, 0,
            "no queries ran; all residual reads are prefetches"
        );
    }

    #[test]
    fn disabled_prefetcher_is_inert() {
        let storage: Arc<MemStorage> = Arc::new(MemStorage::new());
        let db = LsmTree::new(Options::small(), storage.clone()).unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20, 2));
        let prefetcher = Arc::new(CompactionPrefetcher::new(
            cache.clone(),
            storage as Arc<dyn Storage>,
            0,
        ));
        db.add_compaction_listener(prefetcher.clone());
        for i in 0..10_000u64 {
            db.put(
                Bytes::from(format!("user{:020}", i % 1000)),
                Bytes::from("v"),
            )
            .unwrap();
        }
        assert_eq!(prefetcher.blocks_prefetched(), 0);
        assert!(cache.is_empty());
    }
}
