//! Point-result (key-value) cache — RocksDB's Row Cache analogue.
//!
//! Stores individual key-value pairs decoupled from the on-disk block
//! layout, so entries survive compactions. Only point lookups can hit it;
//! scans bypass it entirely (the paper's "KV Cache" baseline, Section 5.1).

use crate::container::{CacheStats, ChargedCache};
use crate::policy::{LruPolicy, Policy};
use adcache_obs::{CacheStructure, Counter, Event, EvictionCause, Obs};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::OnceLock;

/// Per-entry bookkeeping overhead added to the byte charge.
const ENTRY_OVERHEAD: usize = 32;

/// Pre-resolved observability handles (see `BlockCache` for the pattern).
struct KvObsHooks {
    obs: Obs,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl KvObsHooks {
    fn new(obs: Obs) -> Self {
        KvObsHooks {
            hits: obs.counter("cache.kv.hits"),
            misses: obs.counter("cache.kv.misses"),
            evictions: obs.counter("cache.kv.evictions"),
            obs,
        }
    }
}

/// A thread-safe key-value result cache.
pub struct KvCache {
    inner: Mutex<ChargedCache<Bytes, Bytes>>,
    obs: OnceLock<KvObsHooks>,
}

impl KvCache {
    /// Creates an LRU-managed cache bounded at `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, Box::new(LruPolicy::new()))
    }

    /// Creates a cache with a custom eviction policy.
    pub fn with_policy(capacity: usize, policy: Box<dyn Policy<Bytes>>) -> Self {
        KvCache {
            inner: Mutex::new(ChargedCache::new(capacity, policy)),
            obs: OnceLock::new(),
        }
    }

    /// Attaches an observability handle (no-op when called twice).
    pub fn set_obs(&self, obs: Obs) {
        let _ = self.obs.set(KvObsHooks::new(obs));
    }

    fn note_evictions(
        &self,
        cause: EvictionCause,
        inserted: Option<&Bytes>,
        mut evicted: &[(Bytes, Bytes)],
    ) {
        // A same-key replacement (or an oversized refusal bounced back) is
        // not a policy eviction.
        while let (Some(ins), Some((k, _))) = (inserted, evicted.first()) {
            if k == ins {
                evicted = &evicted[1..];
            } else {
                break;
            }
        }
        if evicted.is_empty() {
            return;
        }
        if let Some(h) = self.obs.get() {
            h.evictions.add(evicted.len() as u64);
            h.obs.emit(|| Event::Eviction {
                cache: CacheStructure::Kv,
                cause,
                count: evicted.len() as u64,
                bytes: evicted
                    .iter()
                    .map(|(k, v)| (k.len() + v.len() + ENTRY_OVERHEAD) as u64)
                    .sum(),
            });
        }
    }

    /// Looks up a point result.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        // `Bytes` keys require an owned probe; keys are short so the copy is
        // cheaper than a borrowed-key map abstraction.
        let probe = Bytes::copy_from_slice(key);
        let result = self.inner.lock().get(&probe).cloned();
        if let Some(h) = self.obs.get() {
            if result.is_some() {
                h.hits.inc();
            } else {
                h.misses.inc();
            }
        }
        result
    }

    /// Admits a point result.
    pub fn insert(&self, key: Bytes, value: Bytes) {
        let charge = key.len() + value.len() + ENTRY_OVERHEAD;
        let key_probe = key.clone();
        let evicted = self.inner.lock().insert(key, value, charge);
        self.note_evictions(EvictionCause::Capacity, Some(&key_probe), &evicted);
    }

    /// Applies a write: overwrites a resident entry or drops it on delete,
    /// so the cache never serves stale data.
    pub fn on_write(&self, key: &[u8], value: Option<&Bytes>) {
        let probe = Bytes::copy_from_slice(key);
        let mut inner = self.inner.lock();
        match value {
            Some(v) if inner.contains(&probe) => {
                let charge = probe.len() + v.len() + ENTRY_OVERHEAD;
                inner.insert(probe, v.clone(), charge);
            }
            Some(_) => {}
            None => {
                inner.remove(&probe);
            }
        }
    }

    /// Drops every resident entry (capacity unchanged).
    pub fn clear(&self) {
        self.inner.lock().retain(|_| false);
    }

    /// Re-targets the byte budget.
    pub fn set_capacity(&self, capacity: usize) {
        let evicted = self.inner.lock().set_capacity(capacity);
        self.note_evictions(EvictionCause::Resize, None, &evicted);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats()
    }

    /// Bytes resident.
    pub fn used(&self) -> usize {
        self.inner.lock().used()
    }

    /// Byte budget.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_roundtrip() {
        let c = KvCache::new(1 << 16);
        assert!(c.get(b"k").is_none());
        c.insert(Bytes::from_static(b"k"), Bytes::from_static(b"v"));
        assert_eq!(c.get(b"k").unwrap().as_ref(), b"v");
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn writes_update_and_deletes_invalidate() {
        let c = KvCache::new(1 << 16);
        c.insert(Bytes::from_static(b"k"), Bytes::from_static(b"v1"));
        c.on_write(b"k", Some(&Bytes::from_static(b"v2")));
        assert_eq!(c.get(b"k").unwrap().as_ref(), b"v2");
        c.on_write(b"k", None);
        assert!(c.get(b"k").is_none());
        // Writes to non-resident keys do not admit.
        c.on_write(b"other", Some(&Bytes::from_static(b"x")));
        assert!(c.get(b"other").is_none());
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let c = KvCache::new(3 * (1 + 1 + 32));
        for (k, v) in [("a", "1"), ("b", "2"), ("c", "3")] {
            c.insert(
                Bytes::copy_from_slice(k.as_bytes()),
                Bytes::copy_from_slice(v.as_bytes()),
            );
        }
        c.get(b"a");
        c.insert(Bytes::from_static(b"d"), Bytes::from_static(b"4"));
        assert!(c.get(b"b").is_none(), "LRU victim must be b");
        assert!(c.get(b"a").is_some());
        assert!(c.get(b"d").is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_resize() {
        let c = KvCache::new(1 << 16);
        for i in 0..100u32 {
            c.insert(Bytes::from(format!("k{i}")), Bytes::from(vec![0u8; 100]));
        }
        c.set_capacity(500);
        assert!(c.used() <= 500);
        assert!(c.len() <= 4);
    }
}
