//! Adversarial traffic generators (hostile-workload hardening).
//!
//! Four attack families target AdCache's admission machinery, in the
//! spirit of the cache-pollution / sketch-saturation attacks described for
//! LSM-trees in adversarial environments:
//!
//! - **scan flood** — long range scans from uniformly random starts. Each
//!   scan drags a cold key run through the range cache and burns engine
//!   time; partial admission bounds the footprint but not the work.
//! - **one-hit-wonder storm** — a non-repeating PUT-then-GET walk of an
//!   attacker-owned key space several times the legitimate one. Every key
//!   is touched exactly once, so frequency admission should reject all of
//!   them — but each one leaves a live counter behind, flooding the
//!   sketch's counter space with distinct keys until its estimates are
//!   all collision noise.
//! - **key churn** — a rotating set of attacker-owned keys cycled through
//!   Delete→Put→Get rounds, sized so its byte footprint overflows the
//!   cache: by the time the rotation revisits a key, the cache has had to
//!   evict it, so every round's GET re-misses, reads the LSM-tree, and
//!   drives the admission sketch — a sustained miss-and-write storm.
//! - **sketch collision** — the attacker replicates the sketch's (public)
//!   hash function and searches for keys outside the legitimate key space
//!   whose row buckets collide with the hottest legitimate key. Cycling
//!   those few keys through cache-overflowing Delete→Put→Get rounds with
//!   large values hammers shared counters on every re-miss: junk rides
//!   the victim's inflated frequency past the admission threshold (each
//!   admitted body evicting a swath of legit entries) while the induced
//!   saturation decays erode everyone else's history — *until* the sketch
//!   re-salts its rows and the mined collisions stop landing.
//!
//! Generators produce ordinary [`Operation`]s so attacks run over the same
//! wire protocol and sinks as legitimate traffic; the load generator
//! blends them per connection.

use crate::generator::{render_key, Operation};
use crate::zipf::fnv1a64;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The attack family a generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Long scans from random starts.
    ScanFlood,
    /// Non-repeating single-touch key walk.
    OneHitWonder,
    /// Burst-hammered rotating key set saturating sketch counters.
    KeyChurn,
    /// Precomputed hash collisions against the admission sketch.
    SketchCollision,
}

impl AdversaryKind {
    /// Every attack kind, for matrix-style drills.
    pub const ALL: [AdversaryKind; 4] = [
        AdversaryKind::ScanFlood,
        AdversaryKind::OneHitWonder,
        AdversaryKind::KeyChurn,
        AdversaryKind::SketchCollision,
    ];

    /// Stable CLI / report label.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryKind::ScanFlood => "scan-flood",
            AdversaryKind::OneHitWonder => "one-hit-wonder",
            AdversaryKind::KeyChurn => "key-churn",
            AdversaryKind::SketchCollision => "sketch-collision",
        }
    }

    /// Parses a CLI label (the inverse of [`name`](Self::name)).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scan-flood" => Some(AdversaryKind::ScanFlood),
            "one-hit-wonder" => Some(AdversaryKind::OneHitWonder),
            "key-churn" => Some(AdversaryKind::KeyChurn),
            "sketch-collision" => Some(AdversaryKind::SketchCollision),
            _ => None,
        }
    }
}

/// Configuration for one adversarial stream.
#[derive(Debug, Clone)]
pub struct AdversaryConfig {
    /// Which attack to run.
    pub kind: AdversaryKind,
    /// Legitimate key-space size (attacks aim at or around it).
    pub num_keys: u64,
    /// RNG seed (per-connection streams add their index).
    pub seed: u64,
    /// Scan length for [`AdversaryKind::ScanFlood`].
    pub scan_len: usize,
    /// Rotating set size for [`AdversaryKind::KeyChurn`].
    pub churn_keys: u64,
    /// Delete→Put→Get rounds per churn key before rotating.
    pub churn_burst: u64,
    /// Collision keys to mine per sketch row.
    pub collisions_per_row: usize,
    /// Victim sketch width; 0 derives it from `num_keys` exactly as
    /// `CountMinSketch::for_keys` does (the attacker reads the source).
    pub sketch_width: usize,
    /// Value size for attack-generated PUTs.
    pub value_size: usize,
}

impl AdversaryConfig {
    /// Defaults tuned so 10k ops of any kind visibly stress the defenses.
    /// Value sizes differ per kind: the churn and collision rotations rely
    /// on their byte footprint overflowing the cache so revisits re-miss.
    pub fn new(kind: AdversaryKind, num_keys: u64, seed: u64) -> Self {
        AdversaryConfig {
            kind,
            num_keys: num_keys.max(1),
            seed,
            scan_len: 512,
            churn_keys: 64,
            churn_burst: 1,
            collisions_per_row: 2,
            sketch_width: 0,
            value_size: match kind {
                AdversaryKind::KeyChurn | AdversaryKind::OneHitWonder => 4 << 10,
                AdversaryKind::SketchCollision => 24 << 10,
                AdversaryKind::ScanFlood => 100,
            },
        }
    }
}

/// Sketch depth the attacker assumes (the engine's compile-time default).
const SKETCH_DEPTH: usize = 4;

/// Replica of the sketch's row hash (FNV-1a with avalanche tail). The
/// admission sketch seeds row `r` with `r ^ salt`; the attacker assumes
/// the construction salt of 0 — which is exactly why an epoch re-salt
/// invalidates a precomputed collision set.
fn sketch_hash(data: &[u8], seed: u64) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h
}

/// Replica of `CountMinSketch::for_keys` sizing, so the attacker targets
/// the width a server configured for `keys` expected keys actually uses.
pub fn derived_sketch_width(keys: usize) -> usize {
    const MIN: usize = 1024;
    const MAX: usize = 1 << 26;
    keys.saturating_mul(4)
        .clamp(MIN, MAX)
        .next_power_of_two()
        .min(MAX)
}

/// Precomputed attack state shared by every connection running the same
/// attack (collision mining is expensive; do it once).
#[derive(Debug, Clone, Default)]
pub struct AttackPlan {
    /// Key ids (outside the legitimate space) colliding with the victim's
    /// sketch buckets, grouped in mining order.
    pub collision_ids: Vec<u64>,
}

impl AttackPlan {
    /// Builds the plan for `cfg`. Only [`AdversaryKind::SketchCollision`]
    /// needs mining; other kinds get an empty plan.
    pub fn build(cfg: &AdversaryConfig) -> Self {
        if cfg.kind != AdversaryKind::SketchCollision {
            return AttackPlan::default();
        }
        let width = if cfg.sketch_width == 0 {
            derived_sketch_width(cfg.num_keys as usize)
        } else {
            cfg.sketch_width
        };
        // The victim: the hottest key of a scrambled-zipfian workload is
        // rank 0's image, a fact the attacker derives from the public
        // generator just like the sketch hash.
        let victim_id = fnv1a64(0) % cfg.num_keys;
        let victim = render_key(victim_id);
        let targets: Vec<usize> = (0..SKETCH_DEPTH)
            .map(|r| sketch_hash(&victim, r as u64) as usize % width)
            .collect();
        let mut found = [0usize; SKETCH_DEPTH];
        let want = cfg.collisions_per_row.max(1);
        let mut ids = Vec::with_capacity(want * SKETCH_DEPTH);
        // Candidates start just past the legitimate space so collision
        // keys never shadow real data. Expected tries per hit ≈ width /
        // depth; the cap keeps a mis-sized width from hanging the build.
        let max_tries = (width as u64).saturating_mul(want as u64 * 16);
        let mut candidate = cfg.num_keys;
        let mut tries = 0u64;
        while found.iter().any(|&f| f < want) && tries < max_tries {
            let key = render_key(candidate);
            for (r, &target) in targets.iter().enumerate() {
                if found[r] < want && sketch_hash(&key, r as u64) as usize % width == target {
                    ids.push(candidate);
                    found[r] += 1;
                    break;
                }
            }
            candidate += 1;
            tries += 1;
        }
        AttackPlan { collision_ids: ids }
    }

    /// The sketch-row bucket targets this plan was mined against
    /// (diagnostic; used by tests to verify the mining).
    pub fn is_empty(&self) -> bool {
        self.collision_ids.is_empty()
    }
}

/// One adversarial operation stream.
#[derive(Debug)]
pub struct AdversaryGen {
    cfg: AdversaryConfig,
    plan: AttackPlan,
    rng: StdRng,
    /// Ops produced so far (drives the deterministic walks).
    counter: u64,
    /// Stride of the one-hit-wonder permutation walk, coprime to
    /// `num_keys`.
    step: u64,
    /// Collision keys PUT so far (they must exist before GETs count).
    puts_done: usize,
}

/// Greatest common divisor, for picking a walk stride coprime to the key
/// space.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl AdversaryGen {
    /// Creates a stream; `plan` comes from [`AttackPlan::build`] (shared
    /// across connections).
    pub fn new(cfg: AdversaryConfig, plan: AttackPlan) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xADBA_D05E_ED00);
        // An odd stride near a golden-ratio fraction of the space gives a
        // full-period, cache-hostile walk; nudge until coprime.
        let n = cfg.num_keys;
        let mut step = ((n as f64 * 0.618) as u64 | 1).max(1);
        while gcd(step, n) != 1 {
            step += 2;
        }
        let start = rng.gen_range(0..n);
        AdversaryGen {
            cfg,
            plan,
            rng,
            counter: start,
            step,
            puts_done: 0,
        }
    }

    /// The value body for attack PUTs.
    fn value(&self) -> Bytes {
        Bytes::from(vec![0xAB; self.cfg.value_size.max(1)])
    }

    /// One step of the Delete→Put→Get round on `id`, phased off the op
    /// counter. The delete evicts the key from the KV cache and the put
    /// recreates it uncached, so the round's GET always misses — each
    /// round lands exactly one increment on the admission sketch no
    /// matter how the cache responds.
    fn invalidating_round(&self, id: u64) -> Operation {
        let key = render_key(id);
        match self.counter % 3 {
            0 => Operation::Delete { key },
            1 => Operation::Put {
                key,
                value: self.value(),
            },
            _ => Operation::Get { key },
        }
    }

    /// Produces the next attack operation.
    pub fn next_op(&mut self) -> Operation {
        let n = self.cfg.num_keys;
        let op = match self.cfg.kind {
            AdversaryKind::ScanFlood => Operation::Scan {
                from: render_key(self.rng.gen_range(0..n)),
                len: self.cfg.scan_len.max(1),
            },
            AdversaryKind::OneHitWonder => {
                // Affine full-period walk over an attacker-owned space 4×
                // the legit one, as PUT-then-GET pairs: every key exists
                // exactly long enough to be touched once, so none ever
                // builds frequency — but each GET's miss plants one more
                // distinct live key in the sketch's counter space.
                let space = n * 4;
                let id = n + (self.counter / 2).wrapping_mul(self.step) % space;
                let key = render_key(id);
                if self.counter.is_multiple_of(2) {
                    Operation::Put {
                        key,
                        value: self.value(),
                    }
                } else {
                    Operation::Get { key }
                }
            }
            AdversaryKind::KeyChurn => {
                let burst = self.cfg.churn_burst.max(1);
                let set = self.cfg.churn_keys.max(1);
                let round = self.counter / 3;
                let slot = (round / burst) % set;
                // Attack keys sit outside the legit space: poisoning the
                // shared sketch needs no permission over anyone else's
                // data, only the attacker's own tenant keys.
                let id = n + (fnv1a64(0x00C0_FFEE ^ slot) % n);
                self.invalidating_round(id)
            }
            AdversaryKind::SketchCollision => {
                if self.plan.collision_ids.is_empty() {
                    // Mining failed (mis-sized width); degrade to churn so
                    // the stream still attacks rather than idling.
                    let id = n + (fnv1a64(0x00C0_FFEE ^ (self.counter % 64)) % n);
                    self.invalidating_round(id)
                } else if self.puts_done < self.plan.collision_ids.len() {
                    // Seed each collision key once — the engine only
                    // counts frequencies of keys that exist.
                    let id = self.plan.collision_ids[self.puts_done];
                    self.puts_done += 1;
                    Operation::Put {
                        key: render_key(id),
                        value: self.value(),
                    }
                } else {
                    // Round-robin Delete→Put→Get rounds over the mined
                    // set. The set is small, so per-key counters hit the
                    // saturation point every few rotations (a decay storm
                    // eroding everyone's history), while its byte
                    // footprint overflows the cache so every GET re-lands
                    // a colliding increment instead of being absorbed.
                    let ids = &self.plan.collision_ids;
                    let round = self.counter / 3;
                    let idx = (round % ids.len() as u64) as usize;
                    self.invalidating_round(ids[idx])
                }
            }
        };
        self.counter = self.counter.wrapping_add(1);
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn kind_labels_round_trip() {
        for k in AdversaryKind::ALL {
            assert_eq!(AdversaryKind::parse(k.name()), Some(k));
        }
        assert_eq!(AdversaryKind::parse("nope"), None);
    }

    #[test]
    fn one_hit_wonder_pairs_never_repeat_within_a_cycle() {
        let cfg = AdversaryConfig::new(AdversaryKind::OneHitWonder, 10_000, 7);
        let n = cfg.num_keys;
        let mut gen = AdversaryGen::new(cfg, AttackPlan::default());
        let mut ops = Vec::new();
        for _ in 0..(2 * n) {
            ops.push(gen.next_op());
        }
        let mut seen = HashSet::new();
        // The random start may open mid-pair; skip a leading unpaired GET.
        let mut i = usize::from(matches!(ops[0], Operation::Get { .. }));
        while i + 1 < ops.len() {
            match (&ops[i], &ops[i + 1]) {
                (Operation::Put { key: pk, .. }, Operation::Get { key: gk }) => {
                    assert_eq!(pk, gk, "each key is PUT then GOT back to back");
                    let id = crate::parse_key(gk).expect("workload key encoding");
                    assert!(id >= n, "one-hit keys sit outside legit space");
                    assert!(seen.insert(id), "repeat within one cycle");
                }
                other => panic!("stream must be PUT/GET pairs, got {other:?}"),
            }
            i += 2;
        }
        assert!(
            seen.len() as u64 >= n - 1,
            "walk must keep producing fresh keys"
        );
    }

    #[test]
    fn key_churn_cycles_a_small_hot_set_in_invalidating_rounds() {
        let num_keys = 100_000u64;
        let mut cfg = AdversaryConfig::new(AdversaryKind::KeyChurn, num_keys, 1);
        cfg.churn_keys = 8;
        cfg.churn_burst = 4;
        let mut gen = AdversaryGen::new(cfg, AttackPlan::default());
        let mut keys = HashSet::new();
        let (mut dels, mut puts, mut gets) = (0u64, 0u64, 0u64);
        let mut run_len = Vec::new();
        let mut last = None;
        let mut run = 0u64;
        for _ in 0..384 {
            let key = match gen.next_op() {
                Operation::Delete { key } => {
                    dels += 1;
                    key
                }
                Operation::Put { key, .. } => {
                    puts += 1;
                    key
                }
                Operation::Get { key } => {
                    gets += 1;
                    key
                }
                other => panic!("unexpected op {other:?}"),
            };
            let id = crate::parse_key(&key).expect("workload key encoding");
            assert!(id >= num_keys, "churn keys must sit outside legit space");
            if last.as_ref() == Some(&key) {
                run += 1;
            } else {
                if run > 0 {
                    run_len.push(run);
                }
                run = 1;
                last = Some(key.clone());
            }
            keys.insert(key);
        }
        assert!(keys.len() <= 8, "churn set must stay small: {}", keys.len());
        assert!(
            run_len.iter().any(|&r| r >= 12),
            "bursts must hammer one key across several rounds"
        );
        // Every phase of the Delete→Put→Get round is represented evenly.
        for (name, n) in [("deletes", dels), ("puts", puts), ("gets", gets)] {
            assert!(n >= 384 / 4, "round must interleave {name}, got {n}");
        }
    }

    #[test]
    fn scan_flood_emits_long_scans() {
        let cfg = AdversaryConfig::new(AdversaryKind::ScanFlood, 1000, 3);
        let mut gen = AdversaryGen::new(cfg, AttackPlan::default());
        for _ in 0..50 {
            match gen.next_op() {
                Operation::Scan { len, .. } => assert_eq!(len, 512),
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn collision_plan_mines_per_row_collisions_outside_the_key_space() {
        let cfg = AdversaryConfig::new(AdversaryKind::SketchCollision, 1000, 5);
        let plan = AttackPlan::build(&cfg);
        let width = derived_sketch_width(1000);
        let victim = render_key(fnv1a64(0) % 1000);
        let targets: Vec<usize> = (0..SKETCH_DEPTH)
            .map(|r| sketch_hash(&victim, r as u64) as usize % width)
            .collect();
        assert_eq!(
            plan.collision_ids.len(),
            SKETCH_DEPTH * cfg.collisions_per_row,
            "mining must fill every row's quota"
        );
        for &id in &plan.collision_ids {
            assert!(id >= 1000, "collision keys must sit outside legit space");
            let key = render_key(id);
            let hits = (0..SKETCH_DEPTH)
                .filter(|&r| sketch_hash(&key, r as u64) as usize % width == targets[r])
                .count();
            assert!(hits >= 1, "every mined key must collide in some row");
        }
    }

    #[test]
    fn collision_stream_seeds_every_key_then_cycles_rounds() {
        let cfg = AdversaryConfig::new(AdversaryKind::SketchCollision, 1000, 5);
        let plan = AttackPlan::build(&cfg);
        let mined = plan.collision_ids.len();
        let ids: HashSet<u64> = plan.collision_ids.iter().copied().collect();
        let mut gen = AdversaryGen::new(cfg, plan);
        // Seeding phase: one PUT per mined key, in order, before anything
        // else — the engine only counts frequencies of keys that exist.
        for i in 0..mined {
            match gen.next_op() {
                Operation::Put { key, .. } => {
                    let id = crate::parse_key(&key).expect("workload key encoding");
                    assert!(ids.contains(&id), "seed PUT strays from the plan");
                }
                other => panic!("op {i} must still be a seed PUT, got {other:?}"),
            }
        }
        // Hammer phase: Delete→Put→Get rounds confined to the mined set.
        let (mut dels, mut puts, mut gets) = (0u64, 0u64, 0u64);
        for _ in 0..mined * 3 {
            let key = match gen.next_op() {
                Operation::Delete { key } => {
                    dels += 1;
                    key
                }
                Operation::Put { key, .. } => {
                    puts += 1;
                    key
                }
                Operation::Get { key } => {
                    gets += 1;
                    key
                }
                other => panic!("unexpected op {other:?}"),
            };
            let id = crate::parse_key(&key).expect("workload key encoding");
            assert!(ids.contains(&id), "hammer strays from the mined plan");
        }
        for (name, n) in [("deletes", dels), ("puts", puts), ("gets", gets)] {
            assert!(
                n >= mined as u64 * 3 / 4,
                "round must interleave {name}, got {n}"
            );
        }
    }
}
