//! Operation-trace recording and replay.
//!
//! Traces make experiments exactly repeatable across cache strategies (every
//! strategy sees the identical operation stream) and support the paper's
//! pretraining pipeline, where "workload logs can be collected for
//! pretraining" (Section 3.1). The format is JSON-lines: one serialized
//! [`Operation`] per line.

use crate::generator::Operation;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// An in-memory operation trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The recorded operations, in execution order.
    pub ops: Vec<Operation>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace { ops: Vec::new() }
    }

    /// Appends an operation.
    pub fn record(&mut self, op: Operation) {
        self.ops.push(op);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Writes the trace as JSON-lines.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        let mut w = BufWriter::new(f);
        for op in &self.ops {
            let line = serde_json::to_string(op)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            writeln!(w, "{line}")?;
        }
        w.flush()
    }

    /// Loads a trace saved with [`Trace::save`]. Malformed lines are
    /// reported as errors, not skipped.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let f = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(f);
        let mut ops = Vec::new();
        for (no, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let op: Operation = serde_json::from_str(&line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("trace line {}: {e}", no + 1),
                )
            })?;
            ops.push(op);
        }
        Ok(Trace { ops })
    }

    /// Iterates the operations.
    pub fn iter(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn sample_ops() -> Vec<Operation> {
        vec![
            Operation::Get {
                key: Bytes::from_static(b"user1"),
            },
            Operation::Scan {
                from: Bytes::from_static(b"user2"),
                len: 16,
            },
            Operation::Put {
                key: Bytes::from_static(b"user3"),
                value: Bytes::from_static(b"v"),
            },
            Operation::Delete {
                key: Bytes::from_static(b"user4"),
            },
        ]
    }

    #[test]
    fn save_load_roundtrip() {
        let mut t = Trace::new();
        for op in sample_ops() {
            t.record(op);
        }
        let path = std::env::temp_dir().join(format!("adcache-trace-{}.jsonl", std::process::id()));
        t.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(loaded, t);
        assert_eq!(loaded.len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        let path =
            std::env::temp_dir().join(format!("adcache-trace-bad-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"Get\":{\"key\":[1]}}\nnot json\n").unwrap();
        let err = Trace::load(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_lines_are_ignored() {
        let path =
            std::env::temp_dir().join(format!("adcache-trace-empty-{}.jsonl", std::process::id()));
        std::fs::write(&path, "\n\n").unwrap();
        let t = Trace::load(&path).unwrap();
        assert!(t.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn serde_bytes_roundtrip_preserves_content() {
        // Bytes serializes as an array of numbers through serde.
        let op = Operation::Put {
            key: Bytes::from_static(b"user00000001"),
            value: Bytes::from(vec![0u8, 255, 128]),
        };
        let s = serde_json::to_string(&op).unwrap();
        let back: Operation = serde_json::from_str(&s).unwrap();
        assert_eq!(back, op);
    }
}
