//! # adcache-workload — workload generation for LSM-tree cache evaluation
//!
//! Generates the paper's evaluation workloads (EDBT 2026, Section 5):
//!
//! - [`zipf`] — YCSB-style (scrambled) Zipfian sampling, skew 0.6–1.2;
//! - [`generator`] — operation mixes over a fixed key space (24-byte keys,
//!   configurable value size), with deterministic seeding;
//! - [`phases`] — the Table 3 dynamic schedule (phases A→F) and the four
//!   Figure 7 static workloads;
//! - [`trace`] — JSON-lines operation traces for exact replay across cache
//!   strategies and for pretraining data collection;
//! - [`sink`] — the [`OpSink`] abstraction that lets the same operation
//!   stream drive an in-process engine, a network client, or a recorder;
//! - [`adversary`] — hostile traffic generators (scan floods, one-hit
//!   storms, counter churn, sketch-collision pollution) for robustness
//!   drills.

#![warn(missing_docs)]

pub mod adversary;
pub mod generator;
pub mod phases;
pub mod sink;
pub mod trace;
pub mod zipf;

pub use adversary::{AdversaryConfig, AdversaryGen, AdversaryKind, AttackPlan};
pub use generator::{
    parse_key, render_key, Distribution, Mix, Operation, WorkloadConfig, WorkloadGen,
};
pub use phases::{paper_dynamic_schedule, static_workloads, Phase, Schedule, TABLE3};
pub use sink::{replay, OpSink, RecordingSink};
pub use trace::Trace;
pub use zipf::Zipf;
