//! The operation sink abstraction: anything that can execute a generated
//! [`Operation`] stream.
//!
//! Workload generators and traces produce [`Operation`]s; *where* those
//! operations land is a separate concern. The in-process engine executes
//! them directly, the network load generator ships them over a TCP
//! connection, and tests capture them for inspection — all through the one
//! [`OpSink`] trait, so every driver (static mixes, the dynamic phase
//! schedule, recorded traces) replays identically against any backend.

use crate::generator::Operation;
use crate::trace::Trace;

/// A destination that executes operations drawn from a workload.
pub trait OpSink {
    /// The sink's error type (an engine error, a transport error, ...).
    type Error;

    /// Executes one operation.
    fn apply(&mut self, op: &Operation) -> Result<(), Self::Error>;

    /// Executes a group of operations as one unit, stopping at the first
    /// error. The default just forwards each operation to [`OpSink::apply`]
    /// in order; sinks with a cheaper grouped path (e.g. one wire frame per
    /// group) override this — semantics must stay identical to the
    /// sequential default.
    fn apply_batch(&mut self, ops: &[Operation]) -> Result<(), Self::Error> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }
}

/// A sink that records every operation into an in-memory [`Trace`]
/// (pretraining data collection; golden traces for tests).
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// The operations captured so far, in arrival order.
    pub trace: Trace,
}

impl OpSink for RecordingSink {
    type Error = std::convert::Infallible;

    fn apply(&mut self, op: &Operation) -> Result<(), Self::Error> {
        self.trace.record(op.clone());
        Ok(())
    }
}

/// Replays `ops` into `sink` in order, stopping at the first error.
/// Returns the number of operations applied successfully.
pub fn replay<'a, S, I>(ops: I, sink: &mut S) -> Result<u64, S::Error>
where
    S: OpSink,
    I: IntoIterator<Item = &'a Operation>,
{
    let mut applied = 0;
    for op in ops {
        sink.apply(op)?;
        applied += 1;
    }
    Ok(applied)
}

impl Trace {
    /// Replays the recorded operations into `sink` in execution order.
    pub fn replay_into<S: OpSink>(&self, sink: &mut S) -> Result<u64, S::Error> {
        replay(self.iter(), sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Mix, WorkloadConfig, WorkloadGen};

    /// A sink that fails after a set number of operations.
    struct FlakySink {
        ok_budget: u64,
        seen: Vec<Operation>,
    }

    impl OpSink for FlakySink {
        type Error = String;

        fn apply(&mut self, op: &Operation) -> Result<(), Self::Error> {
            if self.seen.len() as u64 >= self.ok_budget {
                return Err("budget exhausted".into());
            }
            self.seen.push(op.clone());
            Ok(())
        }
    }

    fn sample_trace(n: u64) -> Trace {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            num_keys: 100,
            seed: 7,
            ..Default::default()
        });
        let mix = Mix::new(40.0, 25.0, 5.0, 30.0);
        let mut rec = RecordingSink::default();
        for _ in 0..n {
            let op = gen.next_op(&mix);
            rec.apply(&op).unwrap();
        }
        rec.trace
    }

    #[test]
    fn recording_then_replaying_preserves_order() {
        let trace = sample_trace(50);
        assert_eq!(trace.len(), 50);
        let mut copy = RecordingSink::default();
        let applied = trace.replay_into(&mut copy).unwrap();
        assert_eq!(applied, 50);
        assert_eq!(copy.trace, trace);
    }

    #[test]
    fn default_apply_batch_matches_sequential_apply() {
        let trace = sample_trace(16);
        let mut grouped = RecordingSink::default();
        grouped.apply_batch(&trace.ops).unwrap();
        assert_eq!(grouped.trace, trace);

        // The default stops at the first error exactly like replay().
        let mut flaky = FlakySink {
            ok_budget: 5,
            seen: Vec::new(),
        };
        let err = flaky.apply_batch(&trace.ops).unwrap_err();
        assert_eq!(err, "budget exhausted");
        assert_eq!(flaky.seen.len(), 5);
    }

    #[test]
    fn replay_stops_at_first_sink_error() {
        let trace = sample_trace(20);
        let mut flaky = FlakySink {
            ok_budget: 7,
            seen: Vec::new(),
        };
        let err = trace.replay_into(&mut flaky).unwrap_err();
        assert_eq!(err, "budget exhausted");
        assert_eq!(flaky.seen.len(), 7);
        assert_eq!(flaky.seen.as_slice(), &trace.ops[..7]);
    }
}
