//! Dynamic workload phases (paper Section 5.3, Table 3).
//!
//! The paper's dynamic evaluation runs six phases in sequence, A → F,
//! sweeping from read/scan-dominant to write-heavy mixes. Phase
//! definitions here are data, consumed by the experiment runner.

use crate::generator::Mix;
use serde::{Deserialize, Serialize};

/// One phase of a dynamic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Display name ("A".."F" for the paper's schedule).
    pub name: String,
    /// The operation mix active during the phase.
    pub mix: Mix,
    /// Number of operations to run in the phase.
    pub ops: u64,
}

/// A sequence of phases executed back to back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Ordered phases.
    pub phases: Vec<Phase>,
}

impl Schedule {
    /// Total operation count across phases.
    pub fn total_ops(&self) -> u64 {
        self.phases.iter().map(|p| p.ops).sum()
    }

    /// The phase active at global operation index `op`, with the offset
    /// into that phase. `None` past the end.
    pub fn phase_at(&self, op: u64) -> Option<(&Phase, u64)> {
        let mut start = 0;
        for p in &self.phases {
            if op < start + p.ops {
                return Some((p, op - start));
            }
            start += p.ops;
        }
        None
    }
}

/// The paper's Table 3 phase mixes: `(get, short scan, long scan, write)`
/// percentages for phases A through F.
pub const TABLE3: [(&str, Mix); 6] = [
    ("A", Mix::new(1.0, 1.0, 97.0, 1.0)),
    ("B", Mix::new(1.0, 49.0, 49.0, 1.0)),
    ("C", Mix::new(49.0, 49.0, 1.0, 1.0)),
    ("D", Mix::new(25.0, 25.0, 1.0, 49.0)),
    ("E", Mix::new(1.0, 49.0, 1.0, 49.0)),
    ("F", Mix::new(1.0, 12.0, 12.0, 75.0)),
];

/// Builds the paper's dynamic schedule with `ops_per_phase` operations per
/// phase (the paper runs 50 M per phase; experiments here scale down).
pub fn paper_dynamic_schedule(ops_per_phase: u64) -> Schedule {
    Schedule {
        phases: TABLE3
            .iter()
            .map(|(name, mix)| Phase {
                name: (*name).into(),
                mix: *mix,
                ops: ops_per_phase,
            })
            .collect(),
    }
}

/// The four static workloads of the paper's Figure 7.
pub fn static_workloads() -> Vec<(&'static str, Mix)> {
    vec![
        ("point_lookup", Mix::new(100.0, 0.0, 0.0, 0.0)),
        ("short_scan", Mix::new(0.0, 100.0, 0.0, 0.0)),
        ("balanced", Mix::new(33.0, 33.0, 0.0, 33.0)),
        ("long_scan", Mix::new(0.0, 0.0, 100.0, 0.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper_ratios() {
        let s = paper_dynamic_schedule(100);
        assert_eq!(s.phases.len(), 6);
        assert_eq!(s.total_ops(), 600);
        let a = &s.phases[0];
        assert_eq!(a.name, "A");
        assert_eq!(a.mix.long_scan, 97.0);
        let f = &s.phases[5];
        assert_eq!(f.mix.write, 75.0);
        assert_eq!(f.mix.short_scan, 12.0);
        // Every phase sums to 100%.
        for p in &s.phases {
            let sum = p.mix.get + p.mix.short_scan + p.mix.long_scan + p.mix.write;
            assert!((sum - 100.0).abs() < 1e-9, "phase {} sums to {sum}", p.name);
        }
    }

    #[test]
    fn phase_at_resolves_offsets() {
        let s = paper_dynamic_schedule(10);
        assert_eq!(s.phase_at(0).unwrap().0.name, "A");
        assert_eq!(s.phase_at(9).unwrap().0.name, "A");
        let (p, off) = s.phase_at(10).unwrap();
        assert_eq!(p.name, "B");
        assert_eq!(off, 0);
        assert_eq!(s.phase_at(59).unwrap().0.name, "F");
        assert!(s.phase_at(60).is_none());
    }

    #[test]
    fn static_workloads_cover_figure7() {
        let w = static_workloads();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].0, "point_lookup");
        assert_eq!(w[3].1.long_scan, 100.0);
    }
}
