//! Operation-mix workload generation.
//!
//! Mirrors the paper's Section 5 setup: a fixed key space accessed under a
//! Zipfian distribution, with operations drawn from a (get / short-scan /
//! long-scan / write) mix. Keys render as `user`-prefixed fixed-width
//! strings (24 bytes by default, like the paper's key size).

use crate::zipf::Zipf;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How keys are drawn from the key space (YCSB's request distributions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Zipfian with the configured skew (optionally scrambled).
    Zipfian,
    /// Every key equally likely.
    Uniform,
    /// "Latest": Zipfian over recency — recently *written* keys are hot
    /// (rank 0 = most recently inserted id). Models feeds and queues.
    Latest,
    /// A hot set of `hot_fraction` of the keys receives
    /// `hot_access_fraction` of accesses (YCSB hotspot).
    Hotspot,
}

/// One operation against the store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operation {
    /// Point lookup of `key`.
    Get {
        /// Target key.
        key: Bytes,
    },
    /// Range scan of `len` entries starting at `from`.
    Scan {
        /// Inclusive start key.
        from: Bytes,
        /// Number of entries to return.
        len: usize,
    },
    /// Insert or overwrite.
    Put {
        /// Target key.
        key: Bytes,
        /// Value payload.
        value: Bytes,
    },
    /// Delete `key`.
    Delete {
        /// Target key.
        key: Bytes,
    },
}

impl Operation {
    /// Whether this operation is a read (get or scan).
    pub fn is_read(&self) -> bool {
        matches!(self, Operation::Get { .. } | Operation::Scan { .. })
    }
}

/// Operation-type proportions; they need not sum to 1 (normalized on use).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    /// Point lookups.
    pub get: f64,
    /// Scans of `short_scan_len`.
    pub short_scan: f64,
    /// Scans of `long_scan_len`.
    pub long_scan: f64,
    /// Writes (puts).
    pub write: f64,
}

impl Mix {
    /// A mix with the given percentages.
    pub const fn new(get: f64, short_scan: f64, long_scan: f64, write: f64) -> Self {
        Mix {
            get,
            short_scan,
            long_scan,
            write,
        }
    }

    fn total(&self) -> f64 {
        self.get + self.short_scan + self.long_scan + self.write
    }
}

/// Workload shape parameters (paper Section 5.1, scaled).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of distinct keys.
    pub num_keys: u64,
    /// Value payload size in bytes (paper: 1000).
    pub value_size: usize,
    /// Zipfian skew for point lookups and writes (paper default: 0.9).
    pub point_skew: f64,
    /// Zipfian skew for scan start keys (defaults to `point_skew`).
    pub scan_skew: f64,
    /// Short-scan length (paper: 16).
    pub short_scan_len: usize,
    /// Long-scan length (paper: 64).
    pub long_scan_len: usize,
    /// Spread hot ranks across the key space (YCSB scrambled Zipfian).
    pub scramble: bool,
    /// Request distribution for point lookups and writes.
    pub distribution: Distribution,
    /// Hotspot: fraction of the key space that is hot.
    pub hot_fraction: f64,
    /// Hotspot: fraction of accesses that go to the hot set.
    pub hot_access_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_keys: 200_000,
            value_size: 100,
            point_skew: 0.9,
            scan_skew: 0.9,
            short_scan_len: 16,
            long_scan_len: 64,
            scramble: true,
            distribution: Distribution::Zipfian,
            hot_fraction: 0.2,
            hot_access_fraction: 0.8,
            seed: 0x5EED,
        }
    }
}

/// Renders key id `i` as the fixed-width 24-byte key used throughout the
/// experiments.
pub fn render_key(i: u64) -> Bytes {
    Bytes::from(format!("user{i:020}"))
}

/// The id encoded in a key produced by [`render_key`].
pub fn parse_key(key: &[u8]) -> Option<u64> {
    std::str::from_utf8(key.strip_prefix(b"user")?)
        .ok()?
        .parse()
        .ok()
}

/// Draws operations from a configurable mix over a Zipfian key space.
pub struct WorkloadGen {
    cfg: WorkloadConfig,
    point_dist: Zipf,
    scan_dist: Zipf,
    rng: StdRng,
    value_counter: u64,
    /// Highest key id written so far (drives the Latest distribution).
    latest_write: u64,
}

impl WorkloadGen {
    /// Creates a generator.
    pub fn new(cfg: WorkloadConfig) -> Self {
        let point_dist = Zipf::new(cfg.num_keys, cfg.point_skew);
        let scan_dist = Zipf::new(cfg.num_keys, cfg.scan_skew);
        let rng = StdRng::seed_from_u64(cfg.seed);
        let latest_write = cfg.num_keys.saturating_sub(1);
        WorkloadGen {
            cfg,
            point_dist,
            scan_dist,
            rng,
            value_counter: 0,
            latest_write,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    fn point_key(&mut self) -> Bytes {
        let id = match self.cfg.distribution {
            Distribution::Zipfian => {
                if self.cfg.scramble {
                    self.point_dist.sample_scrambled(&mut self.rng)
                } else {
                    self.point_dist.sample_rank(&mut self.rng)
                }
            }
            Distribution::Uniform => self.rng.gen_range(0..self.cfg.num_keys),
            Distribution::Latest => {
                // Rank 0 = the most recently written id, counting backwards.
                let rank = self.point_dist.sample_rank(&mut self.rng);
                self.latest_write.wrapping_sub(rank) % self.cfg.num_keys
            }
            Distribution::Hotspot => {
                let hot_keys = ((self.cfg.num_keys as f64) * self.cfg.hot_fraction).max(1.0) as u64;
                if self.rng.gen::<f64>() < self.cfg.hot_access_fraction {
                    // Hot set is spread across the space by hashing.
                    crate::zipf::fnv1a64(self.rng.gen_range(0..hot_keys)) % self.cfg.num_keys
                } else {
                    self.rng.gen_range(0..self.cfg.num_keys)
                }
            }
        };
        render_key(id)
    }

    fn scan_start(&mut self) -> Bytes {
        let id = if self.cfg.scramble {
            self.scan_dist.sample_scrambled(&mut self.rng)
        } else {
            self.scan_dist.sample_rank(&mut self.rng)
        };
        render_key(id)
    }

    /// A deterministic-but-distinct value payload.
    pub fn value(&mut self) -> Bytes {
        self.value_counter += 1;
        let mut v = Vec::with_capacity(self.cfg.value_size);
        let tag = self.value_counter.to_le_bytes();
        while v.len() < self.cfg.value_size {
            v.extend_from_slice(&tag);
        }
        v.truncate(self.cfg.value_size);
        Bytes::from(v)
    }

    /// Draws the next operation from `mix`.
    pub fn next_op(&mut self, mix: &Mix) -> Operation {
        let total = mix.total();
        assert!(total > 0.0, "mix must have positive mass");
        let u: f64 = self.rng.gen::<f64>() * total;
        if u < mix.get {
            Operation::Get {
                key: self.point_key(),
            }
        } else if u < mix.get + mix.short_scan {
            Operation::Scan {
                from: self.scan_start(),
                len: self.cfg.short_scan_len,
            }
        } else if u < mix.get + mix.short_scan + mix.long_scan {
            Operation::Scan {
                from: self.scan_start(),
                len: self.cfg.long_scan_len,
            }
        } else {
            let key = self.point_key();
            if let Some(id) = parse_key(&key) {
                self.latest_write = id;
            }
            let value = self.value();
            Operation::Put { key, value }
        }
    }

    /// Operations that load every key once (sequential ids, constant-size
    /// values); run before measurements so the tree is fully populated.
    pub fn load_ops(&mut self) -> Vec<Operation> {
        (0..self.cfg.num_keys)
            .map(|i| Operation::Put {
                key: render_key(i),
                value: self.value(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_rendering_roundtrip_and_width() {
        let k = render_key(42);
        assert_eq!(k.len(), 24, "paper uses 24-byte keys");
        assert_eq!(parse_key(&k), Some(42));
        assert_eq!(parse_key(b"bogus"), None);
        // Lexicographic order matches numeric order.
        assert!(render_key(9) < render_key(10));
        assert!(render_key(199_999) < render_key(200_000));
    }

    #[test]
    fn mix_proportions_are_respected() {
        let mut g = WorkloadGen::new(WorkloadConfig {
            num_keys: 1000,
            ..Default::default()
        });
        let mix = Mix::new(50.0, 25.0, 0.0, 25.0);
        let mut gets = 0;
        let mut scans = 0;
        let mut puts = 0;
        for _ in 0..10_000 {
            match g.next_op(&mix) {
                Operation::Get { .. } => gets += 1,
                Operation::Scan { len, .. } => {
                    assert_eq!(len, 16);
                    scans += 1;
                }
                Operation::Put { value, .. } => {
                    assert_eq!(value.len(), 100);
                    puts += 1;
                }
                Operation::Delete { .. } => unreachable!(),
            }
        }
        assert!((gets as f64 / 10_000.0 - 0.5).abs() < 0.03);
        assert!((scans as f64 / 10_000.0 - 0.25).abs() < 0.03);
        assert!((puts as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn long_scans_use_long_length() {
        let mut g = WorkloadGen::new(WorkloadConfig {
            num_keys: 1000,
            ..Default::default()
        });
        let mix = Mix::new(0.0, 0.0, 1.0, 0.0);
        for _ in 0..100 {
            match g.next_op(&mix) {
                Operation::Scan { len, .. } => assert_eq!(len, 64),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = WorkloadConfig {
            num_keys: 1000,
            seed: 99,
            ..Default::default()
        };
        let mut a = WorkloadGen::new(cfg.clone());
        let mut b = WorkloadGen::new(cfg);
        let mix = Mix::new(1.0, 1.0, 1.0, 1.0);
        for _ in 0..100 {
            assert_eq!(a.next_op(&mix), b.next_op(&mix));
        }
    }

    #[test]
    fn load_ops_cover_every_key_once() {
        let mut g = WorkloadGen::new(WorkloadConfig {
            num_keys: 500,
            ..Default::default()
        });
        let ops = g.load_ops();
        assert_eq!(ops.len(), 500);
        let mut seen = std::collections::HashSet::new();
        for op in ops {
            match op {
                Operation::Put { key, .. } => {
                    assert!(seen.insert(key));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn uniform_distribution_is_flat() {
        let mut g = WorkloadGen::new(WorkloadConfig {
            num_keys: 100,
            distribution: Distribution::Uniform,
            ..Default::default()
        });
        let mix = Mix::new(1.0, 0.0, 0.0, 0.0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            if let Operation::Get { key } = g.next_op(&mix) {
                *counts.entry(key).or_insert(0u64) += 1;
            }
        }
        assert_eq!(counts.len(), 100, "all keys touched");
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        assert!(max < min * 2, "uniform spread too lopsided: {min}..{max}");
    }

    #[test]
    fn latest_distribution_tracks_recent_writes() {
        let mut g = WorkloadGen::new(WorkloadConfig {
            num_keys: 10_000,
            distribution: Distribution::Latest,
            ..Default::default()
        });
        // Interleave writes and reads; reads should concentrate near the
        // most recent writes.
        let mut last_written = None;
        let mut near_hits = 0;
        let mut reads = 0;
        for i in 0..20_000 {
            let mix = if i % 2 == 0 {
                Mix::new(0.0, 0.0, 0.0, 1.0)
            } else {
                Mix::new(1.0, 0.0, 0.0, 0.0)
            };
            match g.next_op(&mix) {
                Operation::Put { key, .. } => last_written = parse_key(&key),
                Operation::Get { key } => {
                    reads += 1;
                    if let (Some(w), Some(r)) = (last_written, parse_key(&key)) {
                        // "near" = within 100 ids behind the latest write.
                        if w.wrapping_sub(r) % 10_000 < 100 {
                            near_hits += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        // Under a uniform distribution only ~1% of reads would land within
        // 100 ids of the latest write; "latest" concentrates far above that.
        assert!(
            near_hits as f64 / reads as f64 > 0.25,
            "latest reads should chase writes: {near_hits}/{reads}"
        );
    }

    #[test]
    fn hotspot_concentrates_on_hot_set() {
        let mut g = WorkloadGen::new(WorkloadConfig {
            num_keys: 10_000,
            distribution: Distribution::Hotspot,
            hot_fraction: 0.1,
            hot_access_fraction: 0.9,
            ..Default::default()
        });
        let mix = Mix::new(1.0, 0.0, 0.0, 0.0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            if let Operation::Get { key } = g.next_op(&mix) {
                *counts.entry(key).or_insert(0u64) += 1;
            }
        }
        // The ~1000 hottest keys should hold ~90% of the mass.
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let hot_mass: u64 = freqs.iter().take(1_000).sum();
        let share = hot_mass as f64 / 50_000.0;
        assert!(share > 0.8, "hot-set share {share}");
    }

    #[test]
    fn skewed_gets_concentrate_on_few_keys() {
        let mut g = WorkloadGen::new(WorkloadConfig {
            num_keys: 10_000,
            point_skew: 1.2,
            ..Default::default()
        });
        let mix = Mix::new(1.0, 0.0, 0.0, 0.0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            if let Operation::Get { key } = g.next_op(&mix) {
                *counts.entry(key).or_insert(0u64) += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 / 20_000.0 > 0.4,
            "skew 1.2 must concentrate access"
        );
    }
}
