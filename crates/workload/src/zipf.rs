//! Zipfian sampling (the paper's access distribution; default skew 0.9).
//!
//! Implements the YCSB-style Zipfian generator: ranks are drawn with the
//! standard inverse-zeta method, and the *scrambled* variant hashes ranks
//! onto the key space so that hot keys are spread uniformly rather than
//! clustered at the low end — the usual assumption when evaluating block
//! caches, since clustering would artificially favour physical locality.

use rand::Rng;

/// A Zipfian distribution over `0..n` with exponent `theta`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n`. `theta = 0` degenerates to uniform;
    /// the paper evaluates `theta` from 0.6 to 1.2.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(theta >= 0.0 && theta != 1.0, "theta must be >= 0 and != 1");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact up to a cutoff, then the integral approximation; keeps
        // construction O(1)-ish even for huge key spaces.
        const EXACT: u64 = 10_000_000;
        if n <= EXACT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail =
                ((n as f64).powf(1.0 - theta) - (EXACT as f64).powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Draws a rank in `0..n` (0 is the hottest).
    pub fn sample_rank(&self, rng: &mut impl Rng) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let _ = self.zeta2;
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64 % self.n
    }

    /// Draws a *scrambled* key id: the rank is hashed onto `0..n` so hot
    /// keys are spread across the key space (YCSB `scrambled_zipfian`).
    pub fn sample_scrambled(&self, rng: &mut impl Rng) -> u64 {
        let rank = self.sample_rank(rng);
        fnv1a64(rank) % self.n
    }

    /// Key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

/// FNV-1a over the little-endian bytes of `x`, with avalanche tail.
pub fn fnv1a64(x: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(theta: f64, n: u64, draws: usize) -> Vec<u64> {
        let z = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = vec![0u64; n as usize];
        for _ in 0..draws {
            h[z.sample_rank(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn rank_zero_is_hottest_and_skew_increases_concentration() {
        let mild = histogram(0.6, 1000, 200_000);
        let sharp = histogram(1.2, 1000, 200_000);
        assert!(mild[0] > mild[500], "rank 0 must beat median rank");
        assert!(
            sharp[0] > mild[0],
            "higher skew concentrates mass on rank 0"
        );
        // Top-10 share grows with skew.
        let share = |h: &[u64]| h[..10].iter().sum::<u64>() as f64 / h.iter().sum::<u64>() as f64;
        assert!(
            share(&sharp) > share(&mild) + 0.2,
            "{} vs {}",
            share(&sharp),
            share(&mild)
        );
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let h = histogram(0.0, 100, 100_000);
        let (mn, mx) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(*mx < mn * 2, "uniform histogram too lopsided: {mn}..{mx}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(37, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample_rank(&mut rng) < 37);
            assert!(z.sample_scrambled(&mut rng) < 37);
        }
    }

    #[test]
    fn scrambling_spreads_the_hot_key() {
        let z = Zipf::new(1_000_000, 0.9);
        let mut rng = StdRng::seed_from_u64(3);
        // The hottest scrambled key should not be key 0.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(z.sample_scrambled(&mut rng)).or_insert(0u64) += 1;
        }
        let hottest = counts.iter().max_by_key(|(_, c)| **c).unwrap();
        assert_ne!(
            *hottest.0, 0,
            "scrambled hot key must move away from rank 0"
        );
        assert_eq!(*hottest.0, fnv1a64(0) % 1_000_000);
    }

    #[test]
    fn huge_keyspace_constructs_quickly() {
        // 10^10 keys exercises the integral tail of zeta.
        let z = Zipf::new(10_000_000_000, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(z.sample_rank(&mut rng) < z.n());
        }
        assert_eq!(z.theta(), 0.9);
    }

    #[test]
    #[should_panic]
    fn theta_one_is_rejected() {
        Zipf::new(100, 1.0);
    }
}
