//! Concurrency tests: many threads hammering the same registry handles and
//! journal must lose no updates and never interleave torn records.

use adcache_obs::{Event, Obs, Registry};
use std::sync::Arc;

#[test]
fn concurrent_counter_updates_are_all_counted() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = registry.clone();
            std::thread::spawn(move || {
                // Half the threads resolve the handle themselves (exercising
                // concurrent registration), half get a fresh one per batch.
                let c = registry.counter("shared.ops");
                let own = registry.counter(&format!("thread.{t}.ops"));
                let h = registry.histogram("shared.latency");
                for i in 0..PER_THREAD {
                    c.inc();
                    own.inc();
                    h.record(i % 512);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        registry.counter("shared.ops").get(),
        THREADS as u64 * PER_THREAD
    );
    for t in 0..THREADS {
        assert_eq!(
            registry.counter(&format!("thread.{t}.ops")).get(),
            PER_THREAD
        );
    }
    let snapshot = registry.snapshot_value();
    let recorded = snapshot
        .get("histograms")
        .and_then(|h| h.get("shared.latency"))
        .and_then(|h| h.get("count"))
        .and_then(serde_json::Value::as_u64)
        .unwrap();
    assert_eq!(recorded, THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_journal_pushes_keep_dense_sequence_numbers() {
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 2_000;
    let obs = Obs::enabled();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let obs = obs.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    obs.emit(|| Event::Flush {
                        entries: t,
                        bytes: i,
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let journal = obs.journal().unwrap();
    assert_eq!(
        journal.len() as u64 + journal.dropped(),
        THREADS * PER_THREAD
    );
    let records = journal.records();
    for pair in records.windows(2) {
        assert_eq!(
            pair[1].seq,
            pair[0].seq + 1,
            "sequence numbers must be dense"
        );
    }
    // Every record survived intact (no torn writes across threads).
    for r in &records {
        match r.event {
            Event::Flush { entries, bytes } => {
                assert!(entries < THREADS && bytes < PER_THREAD);
            }
            _ => panic!("unexpected event kind in journal"),
        }
    }
}
