//! Golden-schema test: the serialized form of every [`Event`] variant is a
//! stable contract consumed by the CLI `trace` subcommand and external
//! plotting scripts. A failure here means a field or variant rename leaked
//! into the wire format — treat it as a breaking change, not a test to
//! update casually.

use adcache_obs::{
    parse_jsonl, parse_jsonl_lenient, AdmissionOutcome, AdmissionReason, CacheStructure,
    ConnCloseCause, Event, EvictionCause, FaultKind, Journal,
};

/// Every variant once, with values chosen to be exactly representable so
/// the JSON text is deterministic.
fn exemplars() -> Vec<(Event, &'static str)> {
    vec![
        (
            Event::RunStart {
                strategy: "adcache".into(),
                total_cache_bytes: 1048576,
            },
            r#"{"RunStart":{"strategy":"adcache","total_cache_bytes":1048576}}"#,
        ),
        (
            Event::ControllerDecision {
                range_ratio: 0.25,
                point_threshold: 0.5,
                scan_a: 64,
                scan_b: 0.3,
                exploratory: true,
            },
            r#"{"ControllerDecision":{"range_ratio":0.25,"point_threshold":0.5,"scan_a":64,"scan_b":0.3,"exploratory":true}}"#,
        ),
        (
            Event::TrainStep {
                reward: 0.125,
                td_error: -0.5,
                actor_lr: 0.001,
                action: vec![0.5, -1.0],
            },
            r#"{"TrainStep":{"reward":0.125,"td_error":-0.5,"actor_lr":0.001,"action":[0.5,-1.0]}}"#,
        ),
        (
            Event::BoundaryResize {
                block_bytes: 1024,
                range_bytes: 512,
                range_ratio: 0.333984375,
                applied: false,
            },
            r#"{"BoundaryResize":{"block_bytes":1024,"range_bytes":512,"range_ratio":0.333984375,"applied":false}}"#,
        ),
        (
            Event::Admission {
                cache: CacheStructure::Range,
                outcome: AdmissionOutcome::Partial,
                reason: AdmissionReason::ScanPartialSlope,
                requested: 64,
                admitted: 28,
            },
            r#"{"Admission":{"cache":"Range","outcome":"Partial","reason":"ScanPartialSlope","requested":64,"admitted":28}}"#,
        ),
        (
            Event::Eviction {
                cache: CacheStructure::Block,
                cause: EvictionCause::Invalidation,
                count: 3,
                bytes: 12288,
            },
            r#"{"Eviction":{"cache":"Block","cause":"Invalidation","count":3,"bytes":12288}}"#,
        ),
        (
            Event::BlockCacheInvalidation {
                files: 2,
                blocks_dropped: 17,
            },
            r#"{"BlockCacheInvalidation":{"files":2,"blocks_dropped":17}}"#,
        ),
        (
            Event::CompactionStart {
                from_level: 0,
                to_level: 1,
                input_files: 4,
            },
            r#"{"CompactionStart":{"from_level":0,"to_level":1,"input_files":4}}"#,
        ),
        (
            Event::CompactionFinish {
                from_level: 0,
                to_level: 1,
                blocks_read: 10,
                blocks_written: 9,
                obsolete_files: 4,
                new_files: 1,
                trivial_move: false,
            },
            r#"{"CompactionFinish":{"from_level":0,"to_level":1,"blocks_read":10,"blocks_written":9,"obsolete_files":4,"new_files":1,"trivial_move":false}}"#,
        ),
        (
            Event::Flush {
                entries: 100,
                bytes: 4096,
            },
            r#"{"Flush":{"entries":100,"bytes":4096}}"#,
        ),
        (
            Event::WalReset {
                appends: 100,
                bytes: 5000,
            },
            r#"{"WalReset":{"appends":100,"bytes":5000}}"#,
        ),
        (
            Event::FaultInjected {
                kind: FaultKind::BitFlip,
                file: 12,
                block: 3,
            },
            r#"{"FaultInjected":{"kind":"BitFlip","file":12,"block":3}}"#,
        ),
        (
            Event::BlockQuarantined { file: 12, block: 3 },
            r#"{"BlockQuarantined":{"file":12,"block":3}}"#,
        ),
        (
            Event::WalTornTail {
                truncated_bytes: 17,
                recovered_records: 42,
            },
            r#"{"WalTornTail":{"truncated_bytes":17,"recovered_records":42}}"#,
        ),
        (
            Event::ManifestRollback {
                reason: "crc mismatch".into(),
            },
            r#"{"ManifestRollback":{"reason":"crc mismatch"}}"#,
        ),
        (
            Event::CrashInjected {
                point: "flush_after_sst".into(),
            },
            r#"{"CrashInjected":{"point":"flush_after_sst"}}"#,
        ),
        (
            Event::SyncIssued {
                target: "manifest".into(),
                file: 0,
            },
            r#"{"SyncIssued":{"target":"manifest","file":0}}"#,
        ),
        (
            Event::UnsyncedLoss {
                files: 3,
                bytes: 4096,
            },
            r#"{"UnsyncedLoss":{"files":3,"bytes":4096}}"#,
        ),
        (
            Event::OrphanSwept { files: 2 },
            r#"{"OrphanSwept":{"files":2}}"#,
        ),
        (
            Event::ConnAccepted {
                conn: 7,
                peer: "127.0.0.1:54321".into(),
            },
            r#"{"ConnAccepted":{"conn":7,"peer":"127.0.0.1:54321"}}"#,
        ),
        (
            Event::ConnClosed {
                conn: 7,
                cause: ConnCloseCause::IdleTimeout,
                requests: 120,
                bytes_in: 4096,
                bytes_out: 16384,
            },
            r#"{"ConnClosed":{"conn":7,"cause":"IdleTimeout","requests":120,"bytes_in":4096,"bytes_out":16384}}"#,
        ),
        (
            Event::RequestServed {
                conn: 7,
                opcode: "scan".into(),
                status: "ok".into(),
                latency_ns: 12500,
            },
            r#"{"RequestServed":{"conn":7,"opcode":"scan","status":"ok","latency_ns":12500}}"#,
        ),
        (
            Event::ServerOverload {
                active: 256,
                limit: 256,
            },
            r#"{"ServerOverload":{"active":256,"limit":256}}"#,
        ),
        (
            Event::SlowRequest {
                conn: 7,
                opcode: "scan".into(),
                status: "ok".into(),
                total_ns: 12000000,
                recv_ns: 4000,
                parse_ns: 900,
                queue_ns: 150000,
                lock_wait_ns: 9000000,
                engine_ns: 2500000,
                cache_ns: 340000,
                reply_ns: 9100,
                key: "user:00042..+64".into(),
            },
            r#"{"SlowRequest":{"conn":7,"opcode":"scan","status":"ok","total_ns":12000000,"recv_ns":4000,"parse_ns":900,"queue_ns":150000,"lock_wait_ns":9000000,"engine_ns":2500000,"cache_ns":340000,"reply_ns":9100,"key":"user:00042..+64"}}"#,
        ),
        (
            Event::LockContention {
                path: "write".into(),
                wait_ns: 2500000,
                budget_ns: 1000000,
            },
            r#"{"LockContention":{"path":"write","wait_ns":2500000,"budget_ns":1000000}}"#,
        ),
        (
            Event::SnapshotWritten {
                seq: 12,
                counters: 40,
                histograms: 9,
            },
            r#"{"SnapshotWritten":{"seq":12,"counters":40,"histograms":9}}"#,
        ),
        (
            Event::AdversaryDetected {
                source: "controller".into(),
                h_estimate: 0.125,
                h_smoothed: 0.5,
                raw_reward: -1.0,
                clamped_reward: -0.25,
            },
            r#"{"AdversaryDetected":{"source":"controller","h_estimate":0.125,"h_smoothed":0.5,"raw_reward":-1.0,"clamped_reward":-0.25}}"#,
        ),
        (
            Event::SketchReset {
                epoch: 3,
                decays: 40,
                fill_pct: 81,
                increments: 4096,
            },
            r#"{"SketchReset":{"epoch":3,"decays":40,"fill_pct":81,"increments":4096}}"#,
        ),
        (
            Event::BatchServed {
                conn: 7,
                subs: 16,
                stripes: 4,
                latency_ns: 98000,
            },
            r#"{"BatchServed":{"conn":7,"subs":16,"stripes":4,"latency_ns":98000}}"#,
        ),
        (
            Event::QuotaThrottled {
                conn: 7,
                opcode: "scan".into(),
                throttled: 1024,
            },
            r#"{"QuotaThrottled":{"conn":7,"opcode":"scan","throttled":1024}}"#,
        ),
        (
            Event::TenantBound { conn: 7, tenant: 3 },
            r#"{"TenantBound":{"conn":7,"tenant":3}}"#,
        ),
        (
            Event::TenantShareResized {
                tenant: 3,
                share: 0.25,
                bytes: 262144,
            },
            r#"{"TenantShareResized":{"tenant":3,"share":0.25,"bytes":262144}}"#,
        ),
        (
            Event::TenantThrottled {
                tenant: 3,
                opcode: "scan".into(),
                throttled: 1024,
            },
            r#"{"TenantThrottled":{"tenant":3,"opcode":"scan","throttled":1024}}"#,
        ),
    ]
}

#[test]
fn every_event_kind_serializes_to_its_golden_form() {
    let exemplars = exemplars();
    assert_eq!(
        exemplars.len(),
        33,
        "new Event variants need a golden exemplar here"
    );
    for (event, golden) in &exemplars {
        let json = serde_json::to_string(event).unwrap();
        assert_eq!(&json, golden, "schema drift for {}", event.kind());
        assert!(
            json.contains(event.kind()),
            "kind label must appear in the wire form"
        );
    }
}

#[test]
fn every_event_kind_round_trips_through_jsonl() {
    let journal = Journal::new(64);
    for (i, (event, _)) in exemplars().into_iter().enumerate() {
        journal.push(i as u64, event);
    }
    let text = journal.to_jsonl();
    let back = parse_jsonl(&text).unwrap();
    assert_eq!(back, journal.records(), "JSONL round trip must be lossless");
    // Each journal line carries the stable envelope fields.
    for line in text.lines() {
        assert!(line.starts_with(r#"{"seq":"#), "envelope drift: {line}");
        assert!(line.contains(r#""window":"#));
        assert!(line.contains(r#""event":"#));
    }
}

#[test]
fn journal_envelope_is_stable() {
    let journal = Journal::new(4);
    journal.push(
        7,
        Event::Flush {
            entries: 1,
            bytes: 2,
        },
    );
    assert_eq!(
        journal.to_jsonl().trim_end(),
        r#"{"seq":0,"window":7,"event":{"Flush":{"entries":1,"bytes":2}}}"#,
    );
}

#[test]
fn lenient_parse_keeps_known_records_alongside_future_kinds() {
    // Forward-compat contract: tooling built against this schema must keep
    // working when a newer writer adds event kinds it has never seen.
    let journal = Journal::new(64);
    for (i, (event, _)) in exemplars().into_iter().enumerate() {
        journal.push(i as u64, event);
    }
    let mut text = journal.to_jsonl();
    text.push_str(r#"{"seq":99,"window":3,"event":{"FromTheFuture":{"x":1}}}"#);
    text.push('\n');
    let (records, skipped) = parse_jsonl_lenient(&text).unwrap();
    assert_eq!(records, journal.records());
    assert_eq!(skipped, 1);
}
