//! The bounded event journal: a ring buffer of sequenced, window-stamped
//! [`Event`]s with JSONL export.

use crate::events::Event;
use parking_lot::Mutex;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::VecDeque;

/// One journal line: a sequence number, the tuning window it happened in,
/// and the event payload.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Global sequence number (monotone within a run, gaps mean drops).
    pub seq: u64,
    /// The tuning window in force when the event fired.
    pub window: u64,
    /// The event payload.
    pub event: Event,
}

impl Serialize for JournalRecord {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("seq".into(), Value::from(self.seq)),
            ("window".into(), Value::from(self.window)),
            ("event".into(), self.event.serialize()),
        ])
    }
}

impl Deserialize for JournalRecord {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(JournalRecord {
            seq: u64::deserialize(v.get("seq").ok_or_else(|| DeError::missing_field("seq"))?)?,
            window: u64::deserialize(
                v.get("window")
                    .ok_or_else(|| DeError::missing_field("window"))?,
            )?,
            event: Event::deserialize(
                v.get("event")
                    .ok_or_else(|| DeError::missing_field("event"))?,
            )?,
        })
    }
}

struct JournalState {
    ring: VecDeque<JournalRecord>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, thread-safe event ring buffer.
///
/// When full, the oldest record is dropped and counted; `seq` gaps at the
/// start of an exported trace reveal how much history was lost.
pub struct Journal {
    capacity: usize,
    state: Mutex<JournalState>,
}

impl Journal {
    /// A journal retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Journal {
            capacity,
            state: Mutex::new(JournalState {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Appends one event stamped with `window`.
    pub fn push(&self, window: u64, event: Event) {
        let mut s = self.state.lock();
        let seq = s.next_seq;
        s.next_seq += 1;
        if s.ring.len() == self.capacity {
            s.ring.pop_front();
            s.dropped += 1;
        }
        s.ring.push_back(JournalRecord { seq, window, event });
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.state.lock().ring.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped due to capacity.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// Copies out the retained records, oldest first.
    pub fn records(&self) -> Vec<JournalRecord> {
        self.state.lock().ring.iter().cloned().collect()
    }

    /// Serializes the retained records as JSON Lines (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.state.lock().ring.iter() {
            out.push_str(&serde_json::to_string(r).expect("journal record serialize"));
            out.push('\n');
        }
        out
    }
}

/// Parses a JSONL trace back into records, failing on the first bad line.
pub fn parse_jsonl(text: &str) -> Result<Vec<JournalRecord>, serde_json::Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str::<JournalRecord>)
        .collect()
}

/// Like [`parse_jsonl`], but forward-compatible: a line that is valid JSON
/// yet does not decode as a known [`JournalRecord`] (an event kind or shape
/// introduced by a newer writer) is skipped and counted instead of failing
/// the whole parse. Lines that are not JSON at all still error — that is a
/// corrupt file, not a schema gap.
pub fn parse_jsonl_lenient(text: &str) -> Result<(Vec<JournalRecord>, u64), serde_json::Error> {
    let mut records = Vec::new();
    let mut skipped = 0u64;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        // Syntactic validity is checked first so truncated or garbage
        // lines surface as hard errors even when decoding is lenient.
        let value: serde_json::Value = serde_json::from_str(line)?;
        match JournalRecord::deserialize(&value) {
            Ok(r) => records.push(r),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_tracks_seq() {
        let j = Journal::new(3);
        for i in 0..5u64 {
            j.push(
                i / 2,
                Event::Flush {
                    entries: i,
                    bytes: i * 10,
                },
            );
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let recs = j.records();
        assert_eq!(recs[0].seq, 2, "oldest surviving record");
        assert_eq!(recs[2].seq, 4);
    }

    #[test]
    fn jsonl_roundtrip() {
        let j = Journal::new(16);
        j.push(
            0,
            Event::RunStart {
                strategy: "adcache".into(),
                total_cache_bytes: 1 << 20,
            },
        );
        j.push(
            1,
            Event::Admission {
                cache: crate::events::CacheStructure::Range,
                outcome: crate::events::AdmissionOutcome::Partial,
                reason: crate::events::AdmissionReason::ScanPartialSlope,
                requested: 64,
                admitted: 28,
            },
        );
        let text = j.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, j.records());
    }

    #[test]
    fn lenient_parse_skips_unknown_event_kinds() {
        let j = Journal::new(16);
        j.push(
            0,
            Event::Flush {
                entries: 1,
                bytes: 10,
            },
        );
        let mut text = j.to_jsonl();
        // A record from some future writer: valid envelope, unknown kind.
        text.push_str(r#"{"seq":1,"window":0,"event":{"QuantumFlush":{"qubits":3}}}"#);
        text.push('\n');
        text.push_str(r#"{"seq":2,"window":0,"event":{"Flush":{"entries":2,"bytes":20}}}"#);
        text.push('\n');
        // The strict parser rejects the stream outright...
        assert!(parse_jsonl(&text).is_err());
        // ...the lenient one keeps every known record and counts the rest.
        let (records, skipped) = parse_jsonl_lenient(&text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 1);
        assert_eq!(records[1].seq, 2);
    }

    #[test]
    fn lenient_parse_still_errors_on_corrupt_lines() {
        let err = parse_jsonl_lenient("{\"seq\":0,\"window\":0\n").unwrap_err();
        let _ = err; // truncated JSON is corruption, not schema drift
        assert!(parse_jsonl_lenient("not json at all\n").is_err());
    }
}
