//! Per-request stage timing.
//!
//! A request travels recv → parse → queue-wait → engine-lock-wait →
//! engine-exec → cache-layer → reply-flush. [`StageTimer`] is a tiny
//! per-request scratchpad of nanosecond durations (a plain `[u64; 7]`, no
//! allocation, no atomics) that the server fills in as the request moves
//! through the pipeline; [`StageSet`] is the pre-resolved bundle of
//! registry histograms it drains into, one `AtomicHistogram` per stage
//! plus a `total`.
//!
//! Stage semantics (documented once here, relied on by DESIGN.md §10):
//!
//! - **recv** — duration of the read syscall that delivered the frame.
//!   Pipelined frames arriving in one read share the same recv value; it
//!   is *excluded* from `total` to avoid double-counting across a batch.
//! - **parse** — frame decode time.
//! - **queue_wait** — time a complete frame sat buffered before execution
//!   began (head-of-line wait behind earlier frames on the connection).
//! - **lock_wait** — time spent blocked acquiring the engine lock.
//! - **engine_exec** — time inside the engine with the lock held.
//! - **cache_layer** — execute time outside the engine lock: cache-layer
//!   lookups, admission decisions, value copies, and (for non-engine
//!   opcodes like STATS/METRICS) serialization.
//! - **reply_flush** — response encode + write-buffer append time.

use crate::metrics::HistogramHandle;
use crate::Obs;

/// A pipeline stage of one request's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Read syscall that delivered the frame (amortized across a batch).
    Recv,
    /// Frame decode.
    Parse,
    /// Buffered wait before execution began.
    QueueWait,
    /// Blocked acquiring the engine lock.
    LockWait,
    /// Inside the engine, lock held.
    EngineExec,
    /// Execute time outside the engine lock (cache layer, serialization).
    CacheLayer,
    /// Response encode + write-buffer append.
    ReplyFlush,
}

/// Number of stages in [`Stage::ALL`].
pub const STAGE_COUNT: usize = 7;

impl Stage {
    /// All stages, pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Recv,
        Stage::Parse,
        Stage::QueueWait,
        Stage::LockWait,
        Stage::EngineExec,
        Stage::CacheLayer,
        Stage::ReplyFlush,
    ];

    /// Stable snake_case label used in metric names and reports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Recv => "recv",
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::LockWait => "lock_wait",
            Stage::EngineExec => "engine_exec",
            Stage::CacheLayer => "cache_layer",
            Stage::ReplyFlush => "reply_flush",
        }
    }
}

/// Per-request scratchpad of stage durations, nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimer {
    ns: [u64; STAGE_COUNT],
}

impl StageTimer {
    /// All stages zero.
    pub fn new() -> Self {
        StageTimer::default()
    }

    /// Overwrites one stage's duration.
    #[inline]
    pub fn set(&mut self, stage: Stage, ns: u64) {
        self.ns[stage as usize] = ns;
    }

    /// Accumulates into one stage (for stages visited more than once).
    #[inline]
    pub fn add(&mut self, stage: Stage, ns: u64) {
        self.ns[stage as usize] = self.ns[stage as usize].saturating_add(ns);
    }

    /// One stage's recorded duration.
    #[inline]
    pub fn get(&self, stage: Stage) -> u64 {
        self.ns[stage as usize]
    }

    /// Total request time: every stage except `recv`, whose syscall
    /// duration is shared by all frames of a pipelined batch.
    pub fn total(&self) -> u64 {
        Stage::ALL
            .iter()
            .filter(|s| !matches!(s, Stage::Recv))
            .fold(0u64, |acc, &s| acc.saturating_add(self.get(s)))
    }
}

/// Pre-resolved registry histograms, one per stage plus `{prefix}.total`.
///
/// Built from a disabled [`Obs`], every handle is inert and
/// [`StageSet::record`] is a no-op.
#[derive(Debug, Clone, Default)]
pub struct StageSet {
    stages: [HistogramHandle; STAGE_COUNT],
    total: HistogramHandle,
}

impl StageSet {
    /// Registers `{prefix}.{stage}` histograms (e.g. `server.stage.recv`)
    /// and `{prefix}.total`.
    pub fn new(obs: &Obs, prefix: &str) -> Self {
        let stages = Stage::ALL.map(|s| obs.histogram(&format!("{prefix}.{}", s.label())));
        StageSet {
            stages,
            total: obs.histogram(&format!("{prefix}.total")),
        }
    }

    /// Records every stage of one finished request, plus the total.
    ///
    /// All stages are recorded — including zeros — so every stage
    /// histogram has the same count and interval means
    /// (`Δsum / Δcount`) are directly comparable across stages.
    pub fn record(&self, timer: &StageTimer) {
        for (h, &ns) in self.stages.iter().zip(&timer.ns) {
            h.record(ns);
        }
        self.total.record(timer.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_excludes_recv() {
        let mut t = StageTimer::new();
        t.set(Stage::Recv, 1_000_000);
        t.set(Stage::Parse, 10);
        t.set(Stage::QueueWait, 20);
        t.set(Stage::LockWait, 30);
        t.set(Stage::EngineExec, 40);
        t.set(Stage::CacheLayer, 50);
        t.set(Stage::ReplyFlush, 60);
        assert_eq!(t.total(), 210);
        t.add(Stage::LockWait, 5);
        assert_eq!(t.get(Stage::LockWait), 35);
        assert_eq!(t.total(), 215);
    }

    #[test]
    fn stage_set_records_into_registry() {
        let obs = Obs::enabled();
        let set = StageSet::new(&obs, "server.stage");
        let mut t = StageTimer::new();
        t.set(Stage::EngineExec, 5_000);
        set.record(&t);
        set.record(&t);
        let json = obs.metrics_json().unwrap();
        assert!(json.contains("server.stage.engine_exec"));
        assert!(json.contains("server.stage.total"));
        // Zero stages are recorded too: counts match across stages.
        let reg = obs.registry().unwrap();
        for (name, h) in reg.histograms_snapshot() {
            assert_eq!(h.count(), 2, "{name} count");
        }
    }

    #[test]
    fn disabled_stage_set_is_inert() {
        let set = StageSet::new(&Obs::disabled(), "server.stage");
        let mut t = StageTimer::new();
        t.set(Stage::Parse, 1);
        set.record(&t); // must not panic or allocate registry state
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "recv",
                "parse",
                "queue_wait",
                "lock_wait",
                "engine_exec",
                "cache_layer",
                "reply_flush"
            ]
        );
    }
}
