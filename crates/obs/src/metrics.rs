//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (name → handle) takes a lock once; recording through a
//! handle is lock-free (relaxed atomics). Handles are cheap to clone and
//! remain valid for the registry's lifetime. A handle obtained from a
//! disabled [`crate::Obs`] is inert: recording through it is a no-op with
//! no allocation and no synchronization.

use crate::histogram::{AtomicHistogram, Histogram};
use parking_lot::Mutex;
use serde::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Lock-free; no-op on an inert handle.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 on an inert handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle holding the latest sampled value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicI64>>);

impl Gauge {
    /// Overwrites the value. Lock-free; no-op on an inert handle.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative). Lock-free; no-op on an inert handle.
    ///
    /// Use this — not `set` — for gauges updated by concurrent writers
    /// (e.g. in-flight request counts), where racing `set` calls clobber
    /// each other.
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n`. Lock-free; no-op on an inert handle.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value (0 on an inert handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A histogram handle for recording latency-like samples.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<AtomicHistogram>>);

impl HistogramHandle {
    /// Records one sample. Lock-free; no-op on an inert handle.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }
}

/// Named metric storage. Maps are ordered so exports are deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<AtomicHistogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it if new.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(cell.clone()))
    }

    /// Returns the gauge registered under `name`, creating it if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Some(cell.clone()))
    }

    /// Returns the histogram registered under `name`, creating it if new.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.histograms.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicHistogram::new()));
        HistogramHandle(Some(cell.clone()))
    }

    /// Current value of every counter, name-ordered.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Current value of every gauge, name-ordered.
    pub fn gauges_snapshot(&self) -> Vec<(String, i64)> {
        self.gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshot of every histogram, name-ordered.
    pub fn histograms_snapshot(&self) -> Vec<(String, Histogram)> {
        self.histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Snapshot of every metric as a JSON value tree.
    ///
    /// Shape: `{"counters": {name: n}, "gauges": {name: n},
    /// "histograms": {name: {count, sum_ns, mean_ns, p50_ns, p95_ns,
    /// p99_ns, max_ns}}}`.
    pub fn snapshot_value(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(v.load(Ordering::Relaxed))))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(v.load(Ordering::Relaxed))))
            .collect();
        let histograms: Vec<(String, Value)> = self
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| {
                let h = v.snapshot();
                let (p50, p95, p99, max) = h.summary();
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::from(h.count())),
                        ("sum_ns".into(), Value::from(h.sum())),
                        ("mean_ns".into(), Value::from(h.mean())),
                        ("p50_ns".into(), Value::from(p50)),
                        ("p95_ns".into(), Value::from(p95)),
                        ("p99_ns".into(), Value::from(p99)),
                        ("max_ns".into(), Value::from(max)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }

    /// Snapshot as pretty-printed JSON text.
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot_value()).expect("metrics serialize")
    }

    /// Snapshot as CSV (`kind,name,field,value` rows; histograms exploded
    /// into one row per summary statistic).
    pub fn snapshot_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (k, v) in self.counters.lock().iter() {
            out.push_str(&format!(
                "counter,{k},value,{}\n",
                v.load(Ordering::Relaxed)
            ));
        }
        for (k, v) in self.gauges.lock().iter() {
            out.push_str(&format!("gauge,{k},value,{}\n", v.load(Ordering::Relaxed)));
        }
        for (k, v) in self.histograms.lock().iter() {
            let h = v.snapshot();
            let (p50, p95, p99, max) = h.summary();
            out.push_str(&format!("histogram,{k},count,{}\n", h.count()));
            out.push_str(&format!("histogram,{k},mean_ns,{}\n", h.mean()));
            out.push_str(&format!("histogram,{k},p50_ns,{p50}\n"));
            out.push_str(&format!("histogram,{k},p95_ns,{p95}\n"));
            out.push_str(&format!("histogram,{k},p99_ns,{p99}\n"));
            out.push_str(&format!("histogram,{k},max_ns,{max}\n"));
        }
        out
    }

    /// Snapshot in the Prometheus text exposition format (version 0.0.4).
    ///
    /// Counters and gauges become single samples; histograms become
    /// summaries with `quantile` labels plus `_sum`/`_count` series.
    /// Metric names are prefixed `adcache_` and sanitized to
    /// `[a-zA-Z0-9_]` so dotted registry names stay legal.
    pub fn prometheus_text(&self) -> String {
        fn prom_name(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 8);
            out.push_str("adcache_");
            for ch in name.chars() {
                if ch.is_ascii_alphanumeric() {
                    out.push(ch);
                } else {
                    out.push('_');
                }
            }
            out
        }
        let mut out = String::new();
        for (k, v) in self.counters_snapshot() {
            let n = prom_name(&k);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (k, v) in self.gauges_snapshot() {
            let n = prom_name(&k);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (k, h) in self.histograms_snapshot() {
            let n = prom_name(&k);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [
                ("0.5", h.quantile(0.5)),
                ("0.95", h.quantile(0.95)),
                ("0.99", h.quantile(0.99)),
            ] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{n}_sum {}\n", h.sum()));
            out.push_str(&format!("{n}_count {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_cell() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(b.get(), 7);
    }

    #[test]
    fn inert_handles_are_noops() {
        let c = Counter::default();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = HistogramHandle::default();
        h.record(100);
    }

    #[test]
    fn snapshot_shapes() {
        let r = Registry::new();
        r.counter("ops").add(5);
        r.gauge("occupancy").set(-2);
        r.histogram("lat").record(1000);
        let v = r.snapshot_value();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("ops"))
                .and_then(Value::as_u64),
            Some(5)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("occupancy"))
                .and_then(Value::as_i64),
            Some(-2)
        );
        assert_eq!(
            v.get("histograms")
                .and_then(|h| h.get("lat"))
                .and_then(|l| l.get("count"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let csv = r.snapshot_csv();
        assert!(csv.contains("counter,ops,value,5"));
        assert!(csv.contains("histogram,lat,p99_ns,"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("server.requests").add(12);
        r.gauge("server.conns.active").set(3);
        r.histogram("server.stage.total").record(2_000);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE adcache_server_requests counter\n"));
        assert!(text.contains("adcache_server_requests 12\n"));
        assert!(text.contains("# TYPE adcache_server_conns_active gauge\n"));
        assert!(text.contains("adcache_server_conns_active 3\n"));
        assert!(text.contains("# TYPE adcache_server_stage_total summary\n"));
        assert!(text.contains("adcache_server_stage_total{quantile=\"0.99\"}"));
        assert!(text.contains("adcache_server_stage_total_sum 2000\n"));
        assert!(text.contains("adcache_server_stage_total_count 1\n"));
        // Every line is either a comment or `name[labels] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE adcache_")
                    || line
                        .split_once(' ')
                        .is_some_and(|(name, val)| name.starts_with("adcache_")
                            && val.parse::<f64>().is_ok()),
                "malformed exposition line: {line}"
            );
        }
    }
}
