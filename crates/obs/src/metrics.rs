//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (name → handle) takes a lock once; recording through a
//! handle is lock-free (relaxed atomics). Handles are cheap to clone and
//! remain valid for the registry's lifetime. A handle obtained from a
//! disabled [`crate::Obs`] is inert: recording through it is a no-op with
//! no allocation and no synchronization.

use crate::histogram::AtomicHistogram;
use parking_lot::Mutex;
use serde::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Lock-free; no-op on an inert handle.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 on an inert handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle holding the latest sampled value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicI64>>);

impl Gauge {
    /// Overwrites the value. Lock-free; no-op on an inert handle.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 on an inert handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A histogram handle for recording latency-like samples.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<AtomicHistogram>>);

impl HistogramHandle {
    /// Records one sample. Lock-free; no-op on an inert handle.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }
}

/// Named metric storage. Maps are ordered so exports are deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<AtomicHistogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it if new.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(cell.clone()))
    }

    /// Returns the gauge registered under `name`, creating it if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Some(cell.clone()))
    }

    /// Returns the histogram registered under `name`, creating it if new.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.histograms.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicHistogram::new()));
        HistogramHandle(Some(cell.clone()))
    }

    /// Snapshot of every metric as a JSON value tree.
    ///
    /// Shape: `{"counters": {name: n}, "gauges": {name: n},
    /// "histograms": {name: {count, mean_ns, p50_ns, p95_ns, p99_ns,
    /// max_ns}}}`.
    pub fn snapshot_value(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(v.load(Ordering::Relaxed))))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(v.load(Ordering::Relaxed))))
            .collect();
        let histograms: Vec<(String, Value)> = self
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| {
                let h = v.snapshot();
                let (p50, p95, p99, max) = h.summary();
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::from(h.count())),
                        ("mean_ns".into(), Value::from(h.mean())),
                        ("p50_ns".into(), Value::from(p50)),
                        ("p95_ns".into(), Value::from(p95)),
                        ("p99_ns".into(), Value::from(p99)),
                        ("max_ns".into(), Value::from(max)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }

    /// Snapshot as pretty-printed JSON text.
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot_value()).expect("metrics serialize")
    }

    /// Snapshot as CSV (`kind,name,field,value` rows; histograms exploded
    /// into one row per summary statistic).
    pub fn snapshot_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (k, v) in self.counters.lock().iter() {
            out.push_str(&format!(
                "counter,{k},value,{}\n",
                v.load(Ordering::Relaxed)
            ));
        }
        for (k, v) in self.gauges.lock().iter() {
            out.push_str(&format!("gauge,{k},value,{}\n", v.load(Ordering::Relaxed)));
        }
        for (k, v) in self.histograms.lock().iter() {
            let h = v.snapshot();
            let (p50, p95, p99, max) = h.summary();
            out.push_str(&format!("histogram,{k},count,{}\n", h.count()));
            out.push_str(&format!("histogram,{k},mean_ns,{}\n", h.mean()));
            out.push_str(&format!("histogram,{k},p50_ns,{p50}\n"));
            out.push_str(&format!("histogram,{k},p95_ns,{p95}\n"));
            out.push_str(&format!("histogram,{k},p99_ns,{p99}\n"));
            out.push_str(&format!("histogram,{k},max_ns,{max}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_cell() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(b.get(), 7);
    }

    #[test]
    fn inert_handles_are_noops() {
        let c = Counter::default();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = HistogramHandle::default();
        h.record(100);
    }

    #[test]
    fn snapshot_shapes() {
        let r = Registry::new();
        r.counter("ops").add(5);
        r.gauge("occupancy").set(-2);
        r.histogram("lat").record(1000);
        let v = r.snapshot_value();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("ops"))
                .and_then(Value::as_u64),
            Some(5)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("occupancy"))
                .and_then(Value::as_i64),
            Some(-2)
        );
        assert_eq!(
            v.get("histograms")
                .and_then(|h| h.get("lat"))
                .and_then(|l| l.get("count"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let csv = r.snapshot_csv();
        assert!(csv.contains("counter,ops,value,5"));
        assert!(csv.contains("histogram,lat,p99_ns,"));
    }
}
