//! Log-bucketed latency histograms.
//!
//! [`Histogram`] records per-operation simulated latencies with ~4% relative
//! bucket granularity and O(1) memory, and reports the percentiles systems
//! papers quote (p50/p95/p99/max). It moved here from `adcache-core` (which
//! re-exports it) so that the observability layer can share the bucketing
//! scheme; [`AtomicHistogram`] is the concurrent counterpart used by the
//! metrics registry's lock-free hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per power of two (higher = finer percentile resolution).
const SUB_BUCKETS: usize = 16;
/// Covers values up to 2^40 ns (~18 minutes), far beyond any op latency.
const MAX_POW2: usize = 40;

fn bucket_of(value: u64) -> usize {
    let v = value.max(1);
    let pow = 63 - v.leading_zeros() as usize; // floor(log2 v)
    let pow = pow.min(MAX_POW2 - 1);
    // Position within the power-of-two band, in SUB_BUCKETS slices.
    let base = 1u64 << pow;
    let frac = ((v - base) * SUB_BUCKETS as u64 / base.max(1)) as usize;
    pow * SUB_BUCKETS + frac.min(SUB_BUCKETS - 1)
}

/// The representative (upper-bound) value of a bucket.
fn bucket_value(idx: usize) -> u64 {
    let pow = idx / SUB_BUCKETS;
    let frac = (idx % SUB_BUCKETS) as u64 + 1;
    let base = 1u64 << pow;
    base + base * frac / SUB_BUCKETS as u64
}

/// A fixed-size logarithmic histogram of nanosecond values.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; SUB_BUCKETS * MAX_POW2],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value (nanoseconds).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q ∈ [0, 1]` (upper bucket bound; exact max for
    /// q=1).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// `(p50, p95, p99, max)` in nanoseconds.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max,
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A concurrently recordable histogram with the same bucketing as
/// [`Histogram`].
///
/// `record` touches only relaxed atomics — no locks, no allocation — so it
/// is safe on the hottest read paths. Snapshots are *not* atomic across
/// buckets; a reader racing writers sees counts within one `record` of each
/// other, which is fine for reporting.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..SUB_BUCKETS * MAX_POW2)
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds). Lock-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain [`Histogram`] for reporting.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_uniform_data() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100ns .. 1ms
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.5);
        assert!((450_000..=560_000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((950_000..=1_070_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert!((h.mean() - 500_050.0).abs() < 1_000.0);
    }

    #[test]
    fn bimodal_distribution_separates_modes() {
        // 90% fast ops at ~2µs, 10% slow at ~80µs (cache hit vs device).
        let mut h = Histogram::new();
        for _ in 0..9_000 {
            h.record(2_000);
        }
        for _ in 0..1_000 {
            h.record(80_000);
        }
        assert!(h.quantile(0.5) < 4_000);
        assert!(h.quantile(0.95) > 60_000);
    }

    #[test]
    fn empty_and_extremes() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(0); // clamps to bucket of 1
        h.record(u64::MAX >> 20);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= u64::MAX >> 20);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..1000u64 {
            a.record(v + 1);
            b.record((v + 1) * 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        assert!(a.quantile(0.25) <= 1_000);
        assert!(a.quantile(0.75) >= 100_000);
    }

    #[test]
    fn bucket_error_is_bounded() {
        // Relative error of the bucket upper bound is <= 1/SUB_BUCKETS.
        for v in [100u64, 1_000, 55_555, 1_000_000, 123_456_789] {
            let idx = bucket_of(v);
            let rep = bucket_value(idx);
            assert!(rep >= v, "bucket value under-reports {v}");
            assert!(
                (rep - v) as f64 / v as f64 <= 2.0 / SUB_BUCKETS as f64 + 0.01,
                "relative error too large for {v}: rep {rep}"
            );
        }
    }

    #[test]
    fn atomic_histogram_matches_sequential() {
        let a = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [1u64, 17, 999, 4_242, 1 << 30] {
            a.record(v);
            h.record(v);
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.max(), h.max());
        assert_eq!(snap.summary(), h.summary());
    }
}
