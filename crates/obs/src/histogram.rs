//! Log-bucketed latency histograms.
//!
//! [`Histogram`] records per-operation simulated latencies with ~4% relative
//! bucket granularity and O(1) memory, and reports the percentiles systems
//! papers quote (p50/p95/p99/max). It moved here from `adcache-core` (which
//! re-exports it) so that the observability layer can share the bucketing
//! scheme; [`AtomicHistogram`] is the concurrent counterpart used by the
//! metrics registry's lock-free hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per power of two (higher = finer percentile resolution).
const SUB_BUCKETS: usize = 16;
/// Covers values up to 2^40 ns (~18 minutes), far beyond any op latency.
const MAX_POW2: usize = 40;

fn bucket_of(value: u64) -> usize {
    let v = value.max(1);
    let pow = 63 - v.leading_zeros() as usize; // floor(log2 v)
    let pow = pow.min(MAX_POW2 - 1);
    // Position within the power-of-two band, in SUB_BUCKETS slices.
    let base = 1u64 << pow;
    // u128: `(v - base) * SUB_BUCKETS` overflows u64 when `pow` is clamped
    // (values beyond 2^40 land far above `base`), up to and including
    // u64::MAX.
    let frac = ((v - base) as u128 * SUB_BUCKETS as u128 / base.max(1) as u128) as usize;
    pow * SUB_BUCKETS + frac.min(SUB_BUCKETS - 1)
}

/// The representative (upper-bound) value of a bucket.
fn bucket_value(idx: usize) -> u64 {
    let pow = idx / SUB_BUCKETS;
    let frac = (idx % SUB_BUCKETS) as u64 + 1;
    let base = 1u64 << pow;
    base + base * frac / SUB_BUCKETS as u64
}

/// A fixed-size logarithmic histogram of nanosecond values.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; SUB_BUCKETS * MAX_POW2],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value (nanoseconds). The running sum saturates rather
    /// than wrapping, so pathological values (e.g. `u64::MAX`) degrade the
    /// mean instead of panicking.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Approximate quantile `q ∈ [0, 1]` (upper bucket bound; exact max for
    /// q=1).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The histogram of values recorded since `earlier` was snapshotted,
    /// assuming `earlier` is a previous snapshot of the same series
    /// (bucket-wise subtraction). The interval `max` is not recoverable
    /// from cumulative state; it is approximated by the upper bound of the
    /// highest bucket that saw traffic in the interval, capped at the
    /// cumulative max.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        for (i, (a, b)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            d.buckets[i] = a.saturating_sub(*b);
        }
        d.count = self.count.saturating_sub(earlier.count);
        d.sum = self.sum.saturating_sub(earlier.sum);
        d.max = d
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| bucket_value(i).min(self.max))
            .unwrap_or(0);
        d
    }

    /// `(p50, p95, p99, max)` in nanoseconds.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max,
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A concurrently recordable histogram with the same bucketing as
/// [`Histogram`].
///
/// `record` touches only relaxed atomics — no locks, no allocation — so it
/// is safe on the hottest read paths. Snapshots are *not* atomic across
/// buckets; a reader racing writers sees some slightly stale buckets, but
/// the snapshot's `count` is derived from the very buckets it captured, so
/// each snapshot is internally coherent — which is what quantile ranking
/// needs.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..SUB_BUCKETS * MAX_POW2)
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds). Lock-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain [`Histogram`] for reporting.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        let mut total = 0u64;
        for (dst, src) in h.buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
            total = total.saturating_add(*dst);
        }
        // Derive the count from the bucket scan itself: quantiles rank
        // against exactly these buckets, and under concurrent writers the
        // shared counter races arbitrarily far ahead of buckets read early
        // in the scan.
        h.count = total;
        h.sum = self.sum.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_uniform_data() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100ns .. 1ms
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.5);
        assert!((450_000..=560_000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((950_000..=1_070_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert!((h.mean() - 500_050.0).abs() < 1_000.0);
    }

    #[test]
    fn bimodal_distribution_separates_modes() {
        // 90% fast ops at ~2µs, 10% slow at ~80µs (cache hit vs device).
        let mut h = Histogram::new();
        for _ in 0..9_000 {
            h.record(2_000);
        }
        for _ in 0..1_000 {
            h.record(80_000);
        }
        assert!(h.quantile(0.5) < 4_000);
        assert!(h.quantile(0.95) > 60_000);
    }

    #[test]
    fn empty_and_extremes() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(0); // clamps to bucket of 1
        h.record(u64::MAX >> 20);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= u64::MAX >> 20);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..1000u64 {
            a.record(v + 1);
            b.record((v + 1) * 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        assert!(a.quantile(0.25) <= 1_000);
        assert!(a.quantile(0.75) >= 100_000);
    }

    #[test]
    fn bucket_error_is_bounded() {
        // Relative error of the bucket upper bound is <= 1/SUB_BUCKETS.
        for v in [100u64, 1_000, 55_555, 1_000_000, 123_456_789] {
            let idx = bucket_of(v);
            let rep = bucket_value(idx);
            assert!(rep >= v, "bucket value under-reports {v}");
            assert!(
                (rep - v) as f64 / v as f64 <= 2.0 / SUB_BUCKETS as f64 + 0.01,
                "relative error too large for {v}: rep {rep}"
            );
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0, 2.0, -1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.summary(), (0, 0, 0, 0));
    }

    #[test]
    fn merge_of_disjoint_bucket_ranges() {
        // a occupies only the low bands, b only bands far above a's —
        // no bucket overlaps, so the merge must preserve both modes and
        // the quantiles must jump across the empty gap.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..100 {
            a.record(10); // ~10ns band
            b.record(1 << 35); // ~34s band
        }
        let (mut m, other) = (a.clone(), b.clone());
        m.merge(&other);
        assert_eq!(m.count(), 200);
        assert_eq!(m.sum(), a.sum() + b.sum());
        assert_eq!(m.max(), 1 << 35);
        assert!(m.quantile(0.25) < 100);
        assert!(m.quantile(0.75) >= 1 << 35);
        // Merging an empty histogram is the identity.
        let before = m.summary();
        m.merge(&Histogram::new());
        assert_eq!(m.summary(), before);
    }

    #[test]
    fn saturation_at_u64_max() {
        // Values beyond 2^40 clamp into the top band without overflowing
        // bucket arithmetic, and the running sum saturates instead of
        // wrapping or panicking.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX, "sum must saturate");
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // The clamped bucket index stays in range for any input.
        assert!(bucket_of(u64::MAX) < SUB_BUCKETS * MAX_POW2);
        assert_eq!(bucket_of(u64::MAX), SUB_BUCKETS * MAX_POW2 - 1);
    }

    #[test]
    fn atomic_snapshot_while_recording_is_coherent() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let h = Arc::new(AtomicHistogram::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.record(1 + (n * 37 + t) % 1_000_000);
                        n += 1;
                    }
                    n
                })
            })
            .collect();

        // Snapshots race the writers; every one must be internally sane:
        // monotone non-decreasing count, count exactly matching the
        // captured buckets (it is derived from them), quantiles in range.
        let mut last_count = 0u64;
        for _ in 0..200 {
            let snap = h.snapshot();
            let c = snap.count();
            assert!(c >= last_count, "count went backwards: {c} < {last_count}");
            last_count = c;
            let bucket_total: u64 = snap.buckets.iter().sum();
            assert_eq!(
                bucket_total, c,
                "snapshot count must be coherent with its buckets"
            );
            if c > 0 {
                let p99 = snap.quantile(0.99);
                assert!(p99 >= 1 && p99 <= snap.max().max(1_100_000));
            }
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(h.snapshot().count(), total);
    }

    #[test]
    fn diff_recovers_interval_histogram() {
        let mut cum = Histogram::new();
        for _ in 0..50 {
            cum.record(1_000);
        }
        let earlier = cum.clone();
        for _ in 0..200 {
            cum.record(64_000);
        }
        let d = cum.diff(&earlier);
        assert_eq!(d.count(), 200);
        assert_eq!(d.sum(), 200 * 64_000);
        // Only the interval's band is populated, so even p1 is ~64µs.
        assert!(d.quantile(0.01) > 32_000);
        assert!(d.max() >= 64_000 && d.max() <= 68_500);
        // Diff against itself is empty.
        let z = cum.diff(&cum);
        assert_eq!(z.count(), 0);
        assert_eq!(z.max(), 0);
    }

    #[test]
    fn atomic_histogram_matches_sequential() {
        let a = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [1u64, 17, 999, 4_242, 1 << 30] {
            a.record(v);
            h.record(v);
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.max(), h.max());
        assert_eq!(snap.summary(), h.summary());
    }
}
