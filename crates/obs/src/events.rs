//! The structured event taxonomy.
//!
//! Every observable action in the stack maps to one [`Event`] variant.
//! Serialized field and variant names are a **stable schema**: trace
//! consumers (the CLI `trace` subcommand, plotting scripts, the golden
//! schema test in `tests/schema.rs`) parse them by name, so renames are
//! breaking changes.

use serde::{Deserialize, Serialize};

/// Which cache structure an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheStructure {
    /// The sharded block cache in front of SSTable blocks.
    Block,
    /// The range cache holding contiguous key runs.
    Range,
    /// The flat KV cache used by the KvCache baseline strategy.
    Kv,
}

/// The verdict of an admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionOutcome {
    /// The candidate was admitted in full.
    Accept,
    /// The candidate was not admitted at all.
    Reject,
    /// A prefix of a scan result was admitted (partial admission).
    Partial,
}

/// Why an admission decision went the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionReason {
    /// Point admission: estimated frequency reached the threshold.
    FrequencyAtThreshold,
    /// Point admission: estimated frequency was below the threshold.
    FrequencyBelowThreshold,
    /// Scan admission: result length within the full-admission cut-off `a`.
    ScanWithinFullLimit,
    /// Scan admission: the sloped rule `a + b·(len − a)` truncated the
    /// result.
    ScanPartialSlope,
    /// Scan admission: the rule admitted nothing.
    ScanZeroLength,
    /// Admission control disabled or not applicable for this strategy; the
    /// insert is unconditional.
    Unconditional,
}

/// What triggered an eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionCause {
    /// Capacity pressure: the policy chose a victim to make room.
    Capacity,
    /// Compaction invalidated cached data for obsolete files.
    Invalidation,
    /// A boundary resize shrank the structure's budget.
    Resize,
}

/// The class of an injected storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A one-shot read error; the retried read succeeds.
    ReadTransient,
    /// A sticky per-address read error that never heals.
    ReadPermanent,
    /// A table write that failed atomically (nothing persisted).
    WriteFail,
    /// A table write torn mid-append (a strict prefix persisted).
    TornWrite,
    /// A read that returned a block with a flipped byte.
    BitFlip,
    /// A table delete / sync that failed, leaving the file behind.
    DeleteFail,
    /// A read charged extra simulated device time.
    LatencySpike,
}

/// Why a server connection was closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnCloseCause {
    /// The client closed the connection (EOF on a frame boundary).
    ClientClosed,
    /// The connection sat idle past the server's idle timeout.
    IdleTimeout,
    /// The server shut down and drained the connection.
    Shutdown,
    /// An unrecoverable protocol violation (oversized or torn frame).
    ProtocolError,
    /// A transport-level I/O error.
    IoError,
    /// The connection was refused because the server was at its limit.
    Overload,
}

/// One structured observation. See the module docs for schema stability
/// rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A run began (always the first event of a trace).
    RunStart {
        /// Strategy name as reported by `Strategy::name()`.
        strategy: String,
        /// Total cache budget in bytes shared by all structures.
        total_cache_bytes: u64,
    },
    /// The controller emitted the decision governing the next window.
    ControllerDecision {
        /// Fraction of the budget assigned to the range cache.
        range_ratio: f64,
        /// Normalized-importance threshold for point admission.
        point_threshold: f64,
        /// Full-admission scan-length cut-off `a`.
        scan_a: u64,
        /// Partial-admission slope `b`.
        scan_b: f64,
        /// Whether exploration noise was applied to the action.
        exploratory: bool,
    },
    /// The RL agent took one training step.
    TrainStep {
        /// Smoothed reward fed to the critic.
        reward: f64,
        /// TD error of the step (the critic's loss signal).
        td_error: f64,
        /// Actor learning rate in force for the step.
        actor_lr: f64,
        /// Raw action vector produced for the window.
        action: Vec<f32>,
    },
    /// The block/range boundary moved (or a move was suppressed).
    BoundaryResize {
        /// New block-cache budget in bytes.
        block_bytes: u64,
        /// New range-cache budget in bytes.
        range_bytes: u64,
        /// The range ratio that produced these budgets.
        range_ratio: f64,
        /// False when hysteresis suppressed the resize.
        applied: bool,
    },
    /// One admission decision on a cache-fill path.
    Admission {
        /// The cache structure deciding.
        cache: CacheStructure,
        /// Accept / Reject / Partial.
        outcome: AdmissionOutcome,
        /// The rule that produced the outcome.
        reason: AdmissionReason,
        /// Entries offered for admission.
        requested: u64,
        /// Entries actually admitted.
        admitted: u64,
    },
    /// Evictions from one cache structure (possibly batched).
    Eviction {
        /// The structure evicting.
        cache: CacheStructure,
        /// What triggered it.
        cause: EvictionCause,
        /// Number of entries evicted.
        count: u64,
        /// Bytes released.
        bytes: u64,
    },
    /// Compaction dropped cached blocks of obsolete files.
    BlockCacheInvalidation {
        /// Obsolete files whose blocks were dropped.
        files: u64,
        /// Blocks dropped across all shards.
        blocks_dropped: u64,
    },
    /// A compaction started.
    CompactionStart {
        /// Source level.
        from_level: u64,
        /// Destination level.
        to_level: u64,
        /// Input SSTables feeding the merge.
        input_files: u64,
    },
    /// A compaction finished.
    CompactionFinish {
        /// Source level.
        from_level: u64,
        /// Destination level.
        to_level: u64,
        /// Blocks read from inputs (I/O amplification numerator).
        blocks_read: u64,
        /// Blocks written to outputs.
        blocks_written: u64,
        /// Input files made obsolete.
        obsolete_files: u64,
        /// Output files created.
        new_files: u64,
        /// Whether the compaction was a trivial move (no I/O).
        trivial_move: bool,
    },
    /// A memtable flush wrote an SSTable to level 0.
    Flush {
        /// Entries flushed.
        entries: u64,
        /// Approximate bytes flushed.
        bytes: u64,
    },
    /// The write-ahead log was reset after a successful flush.
    WalReset {
        /// Appends accumulated in the segment being retired.
        appends: u64,
        /// Bytes accumulated in the segment being retired.
        bytes: u64,
    },
    /// The fault-injection layer injected one storage fault.
    FaultInjected {
        /// The fault class.
        kind: FaultKind,
        /// Table the fault targeted (0 when not table-specific).
        file: u64,
        /// Block the fault targeted, or the persisted-prefix length for
        /// torn writes (0 when not block-specific).
        block: u64,
    },
    /// A block failed checksum verification and its file was quarantined.
    BlockQuarantined {
        /// Table holding the corrupt block.
        file: u64,
        /// Block number that failed verification.
        block: u64,
    },
    /// WAL replay found a torn tail, truncated it, and continued.
    WalTornTail {
        /// Bytes dropped from the end of the log.
        truncated_bytes: u64,
        /// Intact records recovered before the tear.
        recovered_records: u64,
    },
    /// Manifest recovery fell back to the previous good manifest.
    ManifestRollback {
        /// Why the current manifest was unusable.
        reason: String,
    },
    /// An armed crash point fired (the engine simulated process death).
    CrashInjected {
        /// Stable crash-point label (`CrashPoint::label`).
        point: String,
    },
    /// The engine issued an explicit device sync (fsync) per its sync
    /// policy.
    SyncIssued {
        /// What was synced: `"wal"`, `"manifest"`, `"sst"`, or `"dir"`.
        target: String,
        /// Table id for SST syncs (0 when not table-specific).
        file: u64,
    },
    /// A modeled crash dropped completed-but-unsynced writes from the
    /// device's write-back cache.
    UnsyncedLoss {
        /// Files whose unsynced contents or directory entries were lost.
        files: u64,
        /// Content bytes dropped (including torn suffixes).
        bytes: u64,
    },
    /// Recovery deleted table files no manifest references (orphans left
    /// by an interrupted flush or compaction).
    OrphanSwept {
        /// Orphan table files deleted.
        files: u64,
    },
    /// The TCP server accepted a client connection.
    ConnAccepted {
        /// Server-assigned connection id (monotone within a run).
        conn: u64,
        /// Peer address as reported by the OS.
        peer: String,
    },
    /// A server connection ended.
    ConnClosed {
        /// Server-assigned connection id.
        conn: u64,
        /// Why the connection ended.
        cause: ConnCloseCause,
        /// Requests served on this connection.
        requests: u64,
        /// Bytes read from the client.
        bytes_in: u64,
        /// Bytes written to the client.
        bytes_out: u64,
    },
    /// One served request (sampled — the server journals every Nth
    /// request, not all of them; the full population lives in the
    /// `server.*.latency_ns` histograms).
    RequestServed {
        /// Connection the request arrived on.
        conn: u64,
        /// Stable opcode label (`get`, `put`, `delete`, `scan`, `stats`,
        /// `ping`, `shutdown`).
        opcode: String,
        /// Stable status label (`ok`, `not_found`, `err`).
        status: String,
        /// Wall-clock service latency in nanoseconds.
        latency_ns: u64,
    },
    /// The server hit a saturation limit and shed load.
    ServerOverload {
        /// Active connections when the limit was hit.
        active: u64,
        /// The configured connection limit.
        limit: u64,
    },
    /// A request crossed the slow-request threshold; the full stage
    /// breakdown is journaled so tail latency can be attributed to a
    /// pipeline stage after the fact.
    SlowRequest {
        /// Connection the request arrived on.
        conn: u64,
        /// Stable opcode label.
        opcode: String,
        /// Stable status label of the reply.
        status: String,
        /// Total request time (queue + parse + engine + reply), ns.
        total_ns: u64,
        /// Duration of the read syscall that delivered the frame (shared
        /// by every frame in the same read batch; not part of `total_ns`).
        recv_ns: u64,
        /// Frame decode time.
        parse_ns: u64,
        /// Time the complete frame sat buffered before execution began
        /// (head-of-line wait behind earlier frames on the connection).
        queue_ns: u64,
        /// Time spent waiting to acquire the engine lock.
        lock_wait_ns: u64,
        /// Time spent inside the engine with the lock held.
        engine_ns: u64,
        /// Execute time outside the engine lock (cache-layer lookups,
        /// admission, serialization).
        cache_ns: u64,
        /// Response encode time.
        reply_ns: u64,
        /// Key (point ops) or `from..+limit` range (scans), lossy UTF-8,
        /// truncated.
        key: String,
    },
    /// An engine lock acquisition waited longer than the configured
    /// budget (`Options::lock_wait_budget_ns`).
    LockContention {
        /// Acquisition path: `read`, `write`, `flush`, or `compaction`.
        path: String,
        /// How long the acquisition waited, ns.
        wait_ns: u64,
        /// The budget it exceeded, ns.
        budget_ns: u64,
    },
    /// The snapshot thread appended one rolling delta to
    /// `timeseries.jsonl`.
    SnapshotWritten {
        /// Snapshot sequence number (0-based, monotone within a run).
        seq: u64,
        /// Counters included in the snapshot line.
        counters: u64,
        /// Histograms included in the snapshot line.
        histograms: u64,
    },
    /// The controller flagged a window as adversarial: the smoothed hit
    /// estimate collapsed faster than any organic drift allows, so the
    /// reward was clamped and policy adaptation frozen for the window.
    AdversaryDetected {
        /// Which guard fired (`controller` today; layer label, not freeform).
        source: String,
        /// Raw hit estimate of the suspect window.
        h_estimate: f64,
        /// Smoothed hit estimate after the EMA update.
        h_smoothed: f64,
        /// Reward before the adversarial clamp.
        raw_reward: f64,
        /// Reward actually fed to the agent after clamping.
        clamped_reward: f64,
    },
    /// The admission sketch auto-reset under anomalous saturation or
    /// decay churn, re-salting its hash rows for the new epoch.
    SketchReset {
        /// Epoch number after the reset (1-based; epoch 0 is unsalted).
        epoch: u64,
        /// Saturation-decay sweeps observed in the window that tripped
        /// the guard.
        decays: u64,
        /// Percentage of sketch counters nonzero when the guard fired.
        fill_pct: u64,
        /// Increments observed in the window that tripped the guard.
        increments: u64,
    },
    /// One served `Batch` frame (sampled like `RequestServed`): many
    /// data-plane sub-requests executed under one envelope, with
    /// consecutive point-gets grouped per engine stripe.
    BatchServed {
        /// Connection the batch arrived on.
        conn: u64,
        /// Sub-requests carried by the frame.
        subs: u64,
        /// Distinct engine stripes the batch's keys routed to.
        stripes: u64,
        /// Wall-clock service latency of the whole batch, ns.
        latency_ns: u64,
    },
    /// A per-connection admission quota throttled a request; the request
    /// was answered with an `Err` reply without touching the engine.
    QuotaThrottled {
        /// Connection whose token bucket ran dry.
        conn: u64,
        /// Stable opcode label of the throttled request.
        opcode: String,
        /// Requests throttled on this connection so far.
        throttled: u64,
    },
    /// A connection bound itself to a tenant via the `Auth` opcode (or
    /// was bound to the default tenant on accept).
    TenantBound {
        /// Connection that bound.
        conn: u64,
        /// Tenant id the connection now serves.
        tenant: u64,
    },
    /// The share arbiter resized one tenant's cache partition.
    TenantShareResized {
        /// Tenant whose partition was resized.
        tenant: u64,
        /// New share of the total cache budget, in [0, 1].
        share: f64,
        /// New partition budget in bytes (block + range slices).
        bytes: u64,
    },
    /// A tenant-wide admission quota (aggregated across all of the
    /// tenant's connections) throttled a request.
    TenantThrottled {
        /// Tenant whose aggregated token bucket ran dry.
        tenant: u64,
        /// Stable opcode label of the throttled request.
        opcode: String,
        /// Requests throttled for this tenant so far.
        throttled: u64,
    },
}

impl Event {
    /// Stable kind label (the serialized variant name).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "RunStart",
            Event::ControllerDecision { .. } => "ControllerDecision",
            Event::TrainStep { .. } => "TrainStep",
            Event::BoundaryResize { .. } => "BoundaryResize",
            Event::Admission { .. } => "Admission",
            Event::Eviction { .. } => "Eviction",
            Event::BlockCacheInvalidation { .. } => "BlockCacheInvalidation",
            Event::CompactionStart { .. } => "CompactionStart",
            Event::CompactionFinish { .. } => "CompactionFinish",
            Event::Flush { .. } => "Flush",
            Event::WalReset { .. } => "WalReset",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::BlockQuarantined { .. } => "BlockQuarantined",
            Event::WalTornTail { .. } => "WalTornTail",
            Event::ManifestRollback { .. } => "ManifestRollback",
            Event::CrashInjected { .. } => "CrashInjected",
            Event::SyncIssued { .. } => "SyncIssued",
            Event::UnsyncedLoss { .. } => "UnsyncedLoss",
            Event::OrphanSwept { .. } => "OrphanSwept",
            Event::ConnAccepted { .. } => "ConnAccepted",
            Event::ConnClosed { .. } => "ConnClosed",
            Event::RequestServed { .. } => "RequestServed",
            Event::ServerOverload { .. } => "ServerOverload",
            Event::SlowRequest { .. } => "SlowRequest",
            Event::LockContention { .. } => "LockContention",
            Event::SnapshotWritten { .. } => "SnapshotWritten",
            Event::AdversaryDetected { .. } => "AdversaryDetected",
            Event::SketchReset { .. } => "SketchReset",
            Event::BatchServed { .. } => "BatchServed",
            Event::QuotaThrottled { .. } => "QuotaThrottled",
            Event::TenantBound { .. } => "TenantBound",
            Event::TenantShareResized { .. } => "TenantShareResized",
            Event::TenantThrottled { .. } => "TenantThrottled",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_matches_serialized_tag() {
        let e = Event::Flush {
            entries: 1,
            bytes: 2,
        };
        let v = e.serialize();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 1);
        assert_eq!(obj[0].0, e.kind());
    }
}
