//! # adcache-obs — unified observability for the AdCache stack
//!
//! One crate, three facilities, shared by every layer (LSM engine, cache
//! structures, controller/runner):
//!
//! - a **metrics registry** ([`metrics::Registry`]) of named counters,
//!   gauges, and histograms with lock-free recording on hot paths;
//! - a **structured event journal** ([`journal::Journal`]) — a bounded ring
//!   of typed [`events::Event`]s (admission verdicts with reason codes,
//!   evictions, compactions, flushes, boundary resizes, RL train steps)
//!   exported as JSONL;
//! - the [`Obs`] handle tying them together, designed so that a *disabled*
//!   handle costs nothing: no allocation, no locking, no atomics — just a
//!   branch on an `Option` that the optimizer hoists.
//!
//! Instrumented code takes an `Obs` by value (it is two pointers) and calls
//! [`Obs::emit`] with a closure, so event construction is skipped entirely
//! when tracing is off:
//!
//! ```
//! use adcache_obs::{Event, Obs};
//!
//! let obs = Obs::enabled();
//! obs.set_window(3);
//! obs.emit(|| Event::Flush { entries: 100, bytes: 4096 });
//! let c = obs.counter("lsm.flushes");
//! c.inc();
//! assert_eq!(obs.journal().unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod histogram;
pub mod journal;
pub mod metrics;
pub mod snapshot;
pub mod stage;

pub use events::{
    AdmissionOutcome, AdmissionReason, CacheStructure, ConnCloseCause, Event, EvictionCause,
    FaultKind,
};
pub use histogram::{AtomicHistogram, Histogram};
pub use journal::{parse_jsonl, parse_jsonl_lenient, Journal, JournalRecord};
pub use metrics::{Counter, Gauge, HistogramHandle, Registry};
pub use snapshot::Snapshotter;
pub use stage::{Stage, StageSet, StageTimer, STAGE_COUNT};

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for an enabled [`Obs`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Maximum events retained by the journal ring (oldest dropped first).
    pub journal_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        // 64k records ≈ a few MB; enough for every controller/compaction
        // event of a long run plus a deep tail of per-op admission events.
        ObsConfig {
            journal_capacity: 1 << 16,
        }
    }
}

struct ObsInner {
    registry: Registry,
    journal: Journal,
    window: AtomicU64,
}

/// The observability handle threaded through the stack.
///
/// Cloning is cheap (an `Option<Arc>`); a handle from [`Obs::disabled`] (or
/// `Obs::default()`) makes every operation a no-op.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Obs {
    /// A disabled handle: every operation is a no-op.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An enabled handle with default configuration.
    pub fn enabled() -> Self {
        Obs::with_config(ObsConfig::default())
    }

    /// An enabled handle with explicit configuration.
    pub fn with_config(cfg: ObsConfig) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: Registry::new(),
                journal: Journal::new(cfg.journal_capacity),
                window: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the tuning window stamped onto subsequent events.
    #[inline]
    pub fn set_window(&self, window: u64) {
        if let Some(inner) = &self.inner {
            inner.window.store(window, Ordering::Relaxed);
        }
    }

    /// The current tuning window (0 when disabled).
    pub fn window(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.window.load(Ordering::Relaxed))
    }

    /// Records an event. The closure runs only when enabled, so callers pay
    /// nothing (no allocation, no formatting) on the disabled path.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            inner
                .journal
                .push(inner.window.load(Ordering::Relaxed), make());
        }
    }

    /// Counter handle for `name`; inert when disabled.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .as_ref()
            .map_or_else(Counter::default, |i| i.registry.counter(name))
    }

    /// Gauge handle for `name`; inert when disabled.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .as_ref()
            .map_or_else(Gauge::default, |i| i.registry.gauge(name))
    }

    /// Histogram handle for `name`; inert when disabled.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.inner
            .as_ref()
            .map_or_else(HistogramHandle::default, |i| i.registry.histogram(name))
    }

    /// The underlying registry, when enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// The underlying journal, when enabled.
    pub fn journal(&self) -> Option<&Journal> {
        self.inner.as_deref().map(|i| &i.journal)
    }

    /// Metrics snapshot as pretty JSON, when enabled.
    pub fn metrics_json(&self) -> Option<String> {
        self.inner.as_ref().map(|i| i.registry.snapshot_json())
    }

    /// Metrics snapshot as CSV, when enabled.
    pub fn metrics_csv(&self) -> Option<String> {
        self.inner.as_ref().map(|i| i.registry.snapshot_csv())
    }

    /// Journal contents as JSONL, when enabled.
    pub fn trace_jsonl(&self) -> Option<String> {
        self.inner.as_ref().map(|i| i.journal.to_jsonl())
    }

    /// Writes `trace.jsonl` and `metrics.json` into `dir` (created if
    /// missing). Returns `false` without touching the filesystem when
    /// disabled.
    pub fn dump_to_dir(&self, dir: &Path) -> std::io::Result<bool> {
        let Some(inner) = &self.inner else {
            return Ok(false);
        };
        std::fs::create_dir_all(dir)?;
        let mut trace = std::fs::File::create(dir.join("trace.jsonl"))?;
        trace.write_all(inner.journal.to_jsonl().as_bytes())?;
        let mut metrics = std::fs::File::create(dir.join("metrics.json"))?;
        metrics.write_all(inner.registry.snapshot_json().as_bytes())?;
        metrics.write_all(b"\n")?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.set_window(9);
        assert_eq!(obs.window(), 0);
        let mut ran = false;
        obs.emit(|| {
            ran = true;
            Event::Flush {
                entries: 0,
                bytes: 0,
            }
        });
        assert!(!ran, "emit closure must not run when disabled");
        assert!(obs.journal().is_none());
        assert!(obs.metrics_json().is_none());
    }

    #[test]
    fn enabled_handle_records_and_stamps_windows() {
        let obs = Obs::enabled();
        obs.emit(|| Event::Flush {
            entries: 1,
            bytes: 10,
        });
        obs.set_window(7);
        obs.emit(|| Event::Flush {
            entries: 2,
            bytes: 20,
        });
        let recs = obs.journal().unwrap().records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].window, 0);
        assert_eq!(recs[1].window, 7);
        obs.counter("x").add(2);
        assert!(obs.metrics_json().unwrap().contains("\"x\": 2"));
    }

    #[test]
    fn dump_writes_both_files() {
        let obs = Obs::enabled();
        obs.emit(|| Event::RunStart {
            strategy: "t".into(),
            total_cache_bytes: 1,
        });
        obs.counter("c").inc();
        let dir = std::env::temp_dir().join(format!("adcache-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(obs.dump_to_dir(&dir).unwrap());
        let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
        assert!(trace.contains("RunStart"));
        let metrics = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert!(metrics.contains("\"c\": 1"));
        assert!(!Obs::disabled().dump_to_dir(&dir).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
