//! Periodic metrics snapshots: rolling deltas appended as JSONL.
//!
//! [`Snapshotter`] runs a background thread that wakes on a fixed
//! interval, diffs the registry against the previous tick, and appends
//! one compact JSON line per tick to a `timeseries.jsonl` file:
//!
//! ```json
//! {"seq":3,"uptime_ms":4021,"interval_ms":1000,
//!  "counters":{"server.requests":18423,...},
//!  "gauges":{"server.conns.active":32,...},
//!  "histograms":{"server.stage.total":{"count":18423,"sum_ns":...,
//!    "mean_ns":...,"p50_ns":...,"p99_ns":...,"max_ns":...},...}}
//! ```
//!
//! Counters and histograms are *interval deltas* (what happened since the
//! previous line); gauges are absolute. Interval histogram percentiles
//! come from bucket-wise subtraction ([`Histogram::diff`]), so a line's
//! p99 describes that interval's requests, not the whole run. Each line
//! also journals a [`Event::SnapshotWritten`].

use crate::{Event, Histogram, Obs};
use serde::Value;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handle to the snapshot thread. Stop (or drop) to get a final flush.
#[derive(Debug)]
pub struct Snapshotter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl Snapshotter {
    /// Spawns the snapshot thread appending to `path` every `interval`.
    ///
    /// The file is opened (created/appended) up front so configuration
    /// errors surface at start rather than silently inside the thread.
    /// With a disabled `obs` the thread exits immediately and no lines
    /// are written.
    pub fn start(obs: Obs, path: &Path, interval: Duration) -> std::io::Result<Snapshotter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("adcache-snapshot".into())
            .spawn(move || run(obs, file, interval, flag))?;
        Ok(Snapshotter {
            stop,
            handle: Some(handle),
        })
    }

    /// Signals the thread, waits for its final (partial-interval)
    /// snapshot, and returns how many lines were written in total.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        self.handle.take().map_or(0, |h| h.join().unwrap_or(0))
    }
}

impl Drop for Snapshotter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn run(obs: Obs, mut file: File, interval: Duration, stop: Arc<AtomicBool>) -> u64 {
    if !obs.is_enabled() {
        return 0;
    }
    let started = Instant::now();
    let mut prev_counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut prev_hists: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut last_tick = started;
    let mut seq = 0u64;
    loop {
        // Sleep in short slices so `stop` is honored promptly; a stop
        // mid-interval still produces one final partial snapshot.
        let mut stopping = stop.load(Ordering::Acquire);
        let mut slept = Duration::ZERO;
        while !stopping && slept < interval {
            let slice = (interval - slept).min(Duration::from_millis(25));
            std::thread::sleep(slice);
            slept += slice;
            stopping = stop.load(Ordering::Acquire);
        }
        let now = Instant::now();
        let (line, n_counters, n_hists) = build_line(
            &obs,
            seq,
            (now - started).as_millis() as u64,
            (now - last_tick).as_millis() as u64,
            &mut prev_counters,
            &mut prev_hists,
        );
        last_tick = now;
        if file.write_all(line.as_bytes()).is_err() {
            return seq;
        }
        obs.emit(|| Event::SnapshotWritten {
            seq,
            counters: n_counters,
            histograms: n_hists,
        });
        seq += 1;
        if stopping {
            let _ = file.flush();
            return seq;
        }
    }
}

/// One JSONL line (newline-terminated) plus the counter/histogram counts
/// it covers. Updates the `prev_*` baselines in place.
fn build_line(
    obs: &Obs,
    seq: u64,
    uptime_ms: u64,
    interval_ms: u64,
    prev_counters: &mut BTreeMap<String, u64>,
    prev_hists: &mut BTreeMap<String, Histogram>,
) -> (String, u64, u64) {
    let reg = obs.registry().expect("run() checked is_enabled");
    let mut counters = Vec::new();
    for (name, v) in reg.counters_snapshot() {
        let delta = v.saturating_sub(prev_counters.get(&name).copied().unwrap_or(0));
        prev_counters.insert(name.clone(), v);
        counters.push((name, Value::from(delta)));
    }
    let gauges: Vec<(String, Value)> = reg
        .gauges_snapshot()
        .into_iter()
        .map(|(name, v)| (name, Value::from(v)))
        .collect();
    let mut histograms = Vec::new();
    for (name, h) in reg.histograms_snapshot() {
        let d = match prev_hists.get(&name) {
            Some(prev) => h.diff(prev),
            None => h.clone(),
        };
        prev_hists.insert(name.clone(), h);
        let (p50, _p95, p99, max) = d.summary();
        histograms.push((
            name,
            Value::Object(vec![
                ("count".into(), Value::from(d.count())),
                ("sum_ns".into(), Value::from(d.sum())),
                ("mean_ns".into(), Value::from(d.mean())),
                ("p50_ns".into(), Value::from(p50)),
                ("p99_ns".into(), Value::from(p99)),
                ("max_ns".into(), Value::from(max)),
            ]),
        ));
    }
    let n_counters = counters.len() as u64;
    let n_hists = histograms.len() as u64;
    let root = Value::Object(vec![
        ("seq".into(), Value::from(seq)),
        ("uptime_ms".into(), Value::from(uptime_ms)),
        ("interval_ms".into(), Value::from(interval_ms)),
        ("counters".into(), Value::Object(counters)),
        ("gauges".into(), Value::Object(gauges)),
        ("histograms".into(), Value::Object(histograms)),
    ]);
    let mut line = serde_json::to_string(&root).expect("snapshot serialize");
    line.push('\n');
    (line, n_counters, n_hists)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_delta_lines_and_final_flush() {
        let obs = Obs::enabled();
        let c = obs.counter("server.requests");
        let h = obs.histogram("server.stage.total");
        c.add(10);
        h.record(1_000);
        let dir = std::env::temp_dir().join(format!("adcache-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timeseries.jsonl");
        let snap = Snapshotter::start(obs.clone(), &path, Duration::from_millis(30)).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        c.add(5);
        h.record(2_000);
        let lines_written = snap.stop();
        assert!(
            lines_written >= 2,
            "expected >=2 snapshots, got {lines_written}"
        );

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, lines_written);
        let mut total_reqs = 0;
        for (i, line) in lines.iter().enumerate() {
            let v: Value = serde_json::from_str(line).expect("snapshot line parses");
            assert_eq!(
                v.get("seq").and_then(Value::as_u64),
                Some(i as u64),
                "seq must be dense"
            );
            for key in [
                "uptime_ms",
                "interval_ms",
                "counters",
                "gauges",
                "histograms",
            ] {
                assert!(v.get(key).is_some(), "line {i} missing {key}");
            }
            total_reqs += v
                .get("counters")
                .and_then(|c| c.get("server.requests"))
                .and_then(Value::as_u64)
                .unwrap();
        }
        // Deltas across all lines sum to the cumulative counter.
        assert_eq!(total_reqs, 15);
        // SnapshotWritten events landed in the journal.
        let recs = obs.journal().unwrap().records();
        assert!(recs
            .iter()
            .any(|r| matches!(r.event, Event::SnapshotWritten { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_obs_writes_nothing() {
        let dir = std::env::temp_dir().join(format!("adcache-snap-off-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timeseries.jsonl");
        let snap = Snapshotter::start(Obs::disabled(), &path, Duration::from_millis(5)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(snap.stop(), 0);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
