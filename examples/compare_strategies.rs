//! Compare all six caching strategies on your own workload mix.
//!
//! A miniature version of the paper's Figure 7 driven entirely through the
//! public API: pick a mix and a cache budget, and the example runs every
//! strategy over the identical operation stream, reporting hit rate, SST
//! reads, simulated throughput, and tail latency.
//!
//! Run with: `cargo run --release --example compare_strategies`

use adcache_suite::core::{run_static, ControllerConfig, CpuModel, RunConfig, Strategy};
use adcache_suite::lsm::Options;
use adcache_suite::workload::{Mix, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Customize these three lines for your scenario.
    let mix = Mix::new(50.0, 30.0, 5.0, 15.0); // get / short scan / long scan / write %
    let cache_bytes = 512 << 10;
    let ops = 40_000;

    let workload = WorkloadConfig {
        num_keys: 20_000,
        value_size: 64,
        ..Default::default()
    };
    println!(
        "{} keys, {}B values, cache {} KiB, {} ops of mix {:?}\n",
        workload.num_keys,
        workload.value_size,
        cache_bytes >> 10,
        ops,
        (mix.get, mix.short_scan, mix.long_scan, mix.write),
    );
    println!(
        "{:>14}  {:>8}  {:>10}  {:>10}  {:>9}  {:>9}",
        "strategy", "hit rate", "sst reads", "qps (sim)", "p50 µs", "p99 µs"
    );

    for strategy in Strategy::all() {
        let cfg = RunConfig {
            strategy,
            total_cache_bytes: cache_bytes,
            db_options: Options::small(),
            workload: workload.clone(),
            controller: ControllerConfig {
                window: 1000,
                hidden: 32,
                ..Default::default()
            },
            cpu: CpuModel::default(),
            shards: 1,
            pretrained_agent: None,
            pinned_decision: None,
            boundary_hysteresis: 0.02,
            serve_partial_range: true,
            compaction_prefetch_blocks: 0,
            trace_dir: None,
            continue_on_error: false,
        };
        let r = run_static(&cfg, mix, ops)?;
        let (p50, _, p99, _) = r.latency.summary();
        println!(
            "{:>14}  {:>8.4}  {:>10}  {:>10.0}  {:>9.1}  {:>9.1}",
            r.strategy,
            r.overall_hit_rate,
            r.total_sst_reads,
            r.overall_qps,
            p50 as f64 / 1000.0,
            p99 as f64 / 1000.0,
        );
    }
    println!("\n(adcache learns online from scratch here; see the bench crate's");
    println!(" pretraining pipeline for the paper's §3.6 warm-started setup)");
    Ok(())
}
