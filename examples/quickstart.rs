//! Quickstart: an AdCache-managed LSM-tree key-value store in ~40 lines.
//!
//! Builds the engine with the full AdCache strategy (block cache + range
//! cache behind a dynamic boundary, admission control, RL controller),
//! writes and reads some data, and prints the cache statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use adcache_suite::core::{CachedDb, EngineConfig, Strategy};
use adcache_suite::lsm::{MemStorage, Options};
use bytes::Bytes;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-memory storage device that counts block I/O (use
    // `FileStorage::open(dir)` for a real on-disk store).
    let storage = Arc::new(MemStorage::new());
    let db = CachedDb::new(
        Options::small(),
        storage,
        EngineConfig::new(Strategy::AdCache, 4 << 20), // 4 MiB cache budget
    )?;

    // Write some data.
    for i in 0..10_000u32 {
        db.put(
            Bytes::from(format!("user{i:06}")),
            Bytes::from(format!("profile-{i}")),
        )?;
    }

    // Point lookup.
    let value = db.get(b"user000042")?.expect("key exists");
    println!("user000042 -> {}", String::from_utf8_lossy(&value));

    // Range scan: 10 entries starting at user001000.
    let page = db.scan(b"user001000", 10)?;
    println!("scan from user001000:");
    for (k, v) in &page {
        println!(
            "  {} = {}",
            String::from_utf8_lossy(k),
            String::from_utf8_lossy(v)
        );
    }

    // Delete and verify.
    db.delete(Bytes::from("user000042"))?;
    assert!(db.get(b"user000042")?.is_none());

    // Repeat the scan: this time it is served from the range cache with
    // zero device I/O.
    let before = db.db().query_block_reads();
    let again = db.scan(b"user001000", 10)?;
    assert_eq!(again, page);
    println!(
        "repeat scan cost {} SST reads (first pass had populated the cache)",
        db.db().query_block_reads() - before
    );

    println!(
        "totals: {} SST reads, {} compactions, tree has {} runs across {} levels",
        db.db().query_block_reads(),
        db.db().stats().compactions(),
        db.db().num_runs(),
        db.db().num_levels(),
    );
    Ok(())
}
