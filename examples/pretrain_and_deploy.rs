//! Pretrain an agent offline, save it to disk, and deploy it without
//! online learning — the paper's Section 3.6 deployment story.
//!
//! The supervised phase fits the actor to target configurations for two
//! synthetic workload profiles (point-heavy → all-range-cache; scan-heavy →
//! all-block-cache); the deployed controller then runs inference-only and
//! still adapts its *decisions* to the observed workload, with zero
//! training cost at serving time.
//!
//! Run with: `cargo run --release --example pretrain_and_deploy`

use adcache_suite::core::{
    run_static, ControllerConfig, CpuModel, RunConfig, Strategy, ACTION_DIM, STATE_DIM,
};
use adcache_suite::lsm::Options;
use adcache_suite::rl::{pretrain_supervised, ActorCritic, AgentConfig, LabeledSample};
use adcache_suite::workload::{Mix, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Offline: fit the actor on labeled workload profiles. ---
    let mut agent_cfg = AgentConfig::paper_default(STATE_DIM, ACTION_DIM);
    agent_cfg.hidden = 32; // small demo network
    let mut agent = ActorCritic::new(agent_cfg);

    // Hand-labeled profiles (real deployments derive these from controlled
    // experiments — see `adcache-bench`'s pretraining pipeline). State
    // layout: [point%, scan%, write%, scan_len, result_hit, block_hit,
    // h_est, range_ratio, block_occ, range_occ, compactions, runs, cache%].
    let mut samples = Vec::new();
    for ratio in [0.0f32, 0.5, 1.0] {
        // Point-heavy profile -> all memory to the range cache.
        samples.push(LabeledSample {
            state: vec![
                1.0, 0.0, 0.0, 0.0, 0.5, 0.5, 0.5, ratio, 0.9, 0.9, 0.1, 0.3, 0.1,
            ],
            target: vec![1.0, 0.05, 0.25, 0.25],
        });
        // Scan-heavy profile -> all memory to the block cache.
        samples.push(LabeledSample {
            state: vec![
                0.0, 1.0, 0.0, 0.25, 0.5, 0.5, 0.5, ratio, 0.9, 0.9, 0.1, 0.3, 0.1,
            ],
            target: vec![0.0, 0.0, 0.25, 0.25],
        });
    }
    let mse = pretrain_supervised(&mut agent, &samples, 500, 3e-3);
    println!("pretrained: final mse {mse:.5}");

    // --- Ship the model: save + reload, as across machines. ---
    let path = std::env::temp_dir().join("adcache-demo-agent.json");
    adcache_suite::rl::save_agent(&agent, &path)?;
    println!(
        "saved model to {} ({} parameters)",
        path.display(),
        agent.param_count()
    );
    let deployed = adcache_suite::rl::load_agent(&path)?;
    std::fs::remove_file(&path).ok();

    // --- Online: deploy with training disabled. ---
    let workload = WorkloadConfig {
        num_keys: 10_000,
        value_size: 64,
        ..Default::default()
    };
    let base = RunConfig {
        strategy: Strategy::AdCache,
        total_cache_bytes: 256 << 10,
        db_options: Options::small(),
        workload,
        controller: ControllerConfig {
            window: 500,
            hidden: 32,
            online: false, // inference-only deployment
            ..Default::default()
        },
        cpu: CpuModel::default(),
        shards: 1,
        pretrained_agent: Some(deployed.to_json()),
        pinned_decision: None,
        boundary_hysteresis: 0.02,
        serve_partial_range: true,
        compaction_prefetch_blocks: 0,
        trace_dir: None,
        continue_on_error: false,
    };

    for (name, mix) in [
        ("point-heavy", Mix::new(100.0, 0.0, 0.0, 0.0)),
        ("scan-heavy", Mix::new(0.0, 100.0, 0.0, 0.0)),
    ] {
        let r = run_static(&base, mix, 10_000)?;
        let last = r
            .windows
            .last()
            .and_then(|w| w.decision)
            .expect("adcache records decisions");
        println!(
            "{name:>11}: hit {:.3}, deployed policy chose range_ratio {:.2}",
            r.overall_hit_rate, last.range_ratio
        );
    }
    Ok(())
}
