//! Durability: survive a crash with the write-ahead log and manifest.
//!
//! Opens an AdCache store backed by real files, writes data (some of it
//! never flushed out of the memtable), "crashes" by dropping the engine,
//! then reopens: the manifest restores the LSM level structure and the WAL
//! replays the unflushed tail.
//!
//! Run with: `cargo run --release --example durability`

use adcache_suite::core::{CachedDb, EngineConfig, Strategy};
use adcache_suite::lsm::{FileStorage, Options};
use bytes::Bytes;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("adcache-durability-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let sst_dir = base.join("sst");
    let meta_dir = base.join("meta");

    // First life: write 5k keys, leave a tail unflushed, "crash".
    {
        let storage = Arc::new(FileStorage::open(&sst_dir)?);
        let db = CachedDb::with_durability(
            Options::small(),
            storage,
            &meta_dir,
            EngineConfig::new(Strategy::AdCache, 1 << 20),
        )?;
        for i in 0..5_000u32 {
            db.put(
                Bytes::from(format!("user{i:06}")),
                Bytes::from(format!("v{i}")),
            )?;
        }
        db.delete(Bytes::from("user000100"))?;
        println!(
            "first life: {} entries still only in the memtable (WAL-protected), {} flushes so far",
            db.db().memtable_len(),
            db.db()
                .stats()
                .flushes
                .load(std::sync::atomic::Ordering::Relaxed),
        );
        // Dropped here without flushing = simulated crash.
    }

    // Second life: everything is back.
    let storage = Arc::new(FileStorage::open(&sst_dir)?);
    let db = CachedDb::with_durability(
        Options::small(),
        storage,
        &meta_dir,
        EngineConfig::new(Strategy::AdCache, 1 << 20),
    )?;
    println!(
        "recovered: {} WAL entries replayed into the memtable, tree has {} runs / {} levels",
        db.db().memtable_len(),
        db.db().num_runs(),
        db.db().num_levels(),
    );
    assert_eq!(db.get(b"user004999")?.unwrap().as_ref(), b"v4999");
    assert!(db.get(b"user000100")?.is_none(), "the delete survived too");
    let page = db.scan(b"user000098", 4)?;
    for (k, v) in &page {
        println!(
            "  {} = {}",
            String::from_utf8_lossy(k),
            String::from_utf8_lossy(v)
        );
    }

    std::fs::remove_dir_all(&base)?;
    println!("ok: all data survived the crash");
    Ok(())
}
