//! Watch AdCache adapt to a workload shift in real time.
//!
//! Runs a point-lookup-heavy phase followed by a scan-heavy phase against
//! the full AdCache engine and prints, per tuning window, the estimated hit
//! rate and the controller's decisions: the block/range memory boundary and
//! the admission parameters. You can see the memory boundary swing from
//! "mostly range cache" (good for point lookups) to "mostly block cache"
//! (good for short scans) right after the shift — the behaviour of the
//! paper's Figure 10.
//!
//! Run with: `cargo run --release --example dynamic_workload`

use adcache_suite::core::{
    run_schedule, ControllerConfig, CpuModel, RunConfig, Strategy, ACTION_DIM, STATE_DIM,
};
use adcache_suite::lsm::Options;
use adcache_suite::rl::{pretrain_supervised, ActorCritic, AgentConfig, LabeledSample};
use adcache_suite::workload::{Mix, Phase, Schedule, WorkloadConfig};

/// A tiny supervised warm-up so the 60-window demo starts from a sensible
/// policy (a production deployment would learn this online over millions
/// of operations, or ship the bench crate's controlled-experiment model).
fn demo_agent() -> ActorCritic {
    let mut agent_cfg = AgentConfig::paper_default(STATE_DIM, ACTION_DIM);
    agent_cfg.hidden = 32;
    let mut agent = ActorCritic::new(agent_cfg);
    let mut samples = Vec::new();
    for ratio in [0.0f32, 0.5, 1.0] {
        samples.push(LabeledSample {
            state: vec![
                1.0, 0.0, 0.0, 0.0, 0.5, 0.5, 0.5, ratio, 0.9, 0.9, 0.1, 0.3, 0.1,
            ],
            target: vec![1.0, 0.05, 0.25, 0.25],
        });
        samples.push(LabeledSample {
            state: vec![
                0.0, 1.0, 0.0, 0.25, 0.5, 0.5, 0.5, ratio, 0.9, 0.9, 0.1, 0.3, 0.1,
            ],
            target: vec![0.0, 0.0, 0.25, 0.25],
        });
    }
    pretrain_supervised(&mut agent, &samples, 500, 3e-3);
    agent
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadConfig {
        num_keys: 20_000,
        value_size: 64,
        ..Default::default()
    };
    let cache_bytes = 512 << 10;

    let cfg = RunConfig {
        strategy: Strategy::AdCache,
        total_cache_bytes: cache_bytes,
        db_options: Options::small(),
        workload,
        controller: ControllerConfig {
            window: 1000,
            hidden: 32,
            ..Default::default()
        },
        cpu: CpuModel::default(),
        shards: 1,
        pretrained_agent: Some(demo_agent().to_json()),
        pinned_decision: None,
        boundary_hysteresis: 0.02,
        serve_partial_range: true,
        compaction_prefetch_blocks: 0,
        trace_dir: None,
        continue_on_error: false,
    };

    let schedule = Schedule {
        phases: vec![
            Phase {
                name: "points".into(),
                mix: Mix::new(95.0, 2.0, 1.0, 2.0),
                ops: 30_000,
            },
            Phase {
                name: "scans".into(),
                mix: Mix::new(2.0, 95.0, 1.0, 2.0),
                ops: 30_000,
            },
        ],
    };

    println!("window  phase   hit_rate  range_ratio  point_thr  scan_a  scan_b");
    let result = run_schedule(&cfg, &schedule)?;
    for w in &result.windows {
        if let Some(d) = w.decision {
            println!(
                "{:>6}  {:<6}  {:>8.3}  {:>11.3}  {:>9.5}  {:>6}  {:>6.2}",
                w.index, w.phase, w.hit_rate, d.range_ratio, d.point_threshold, d.scan_a, d.scan_b
            );
        }
    }
    println!(
        "\noverall: hit rate {:.3}, {} SST reads, {:.0} simulated QPS",
        result.overall_hit_rate, result.total_sst_reads, result.overall_qps
    );
    Ok(())
}
