//! Plug a custom eviction policy into the cache substrate.
//!
//! Every cache in this workspace takes its victim-selection strategy
//! through the `Policy` trait — the same seam the paper uses to evaluate
//! "Range Cache with LeCaR" and "Range Cache with Cacheus". This example
//! implements a toy *random-eviction* policy from scratch, mounts it in a
//! range cache, and compares its hit rate against LRU and LeCaR on a
//! skewed point workload.
//!
//! Run with: `cargo run --release --example custom_policy`

use adcache_suite::cache::{LeCaRPolicy, LruPolicy, PointLookup, Policy, RangeCache};
use adcache_suite::workload::{Mix, Operation, WorkloadConfig, WorkloadGen};
use bytes::Bytes;
use std::collections::HashMap;
use std::hash::Hash;

/// Evicts a pseudo-random resident key. Simple, and a useful worst-case
/// baseline: any policy that loses to random eviction is broken.
struct RandomPolicy<K> {
    keys: Vec<K>,
    index: HashMap<K, usize>,
    rng: u64,
}

impl<K: Clone + Eq + Hash> RandomPolicy<K> {
    fn new(seed: u64) -> Self {
        RandomPolicy {
            keys: Vec::new(),
            index: HashMap::new(),
            rng: seed.max(1),
        }
    }

    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }
}

impl<K: Clone + Eq + Hash + Send> Policy<K> for RandomPolicy<K> {
    fn on_insert(&mut self, key: &K) {
        if !self.index.contains_key(key) {
            self.index.insert(key.clone(), self.keys.len());
            self.keys.push(key.clone());
        }
    }

    fn on_hit(&mut self, _key: &K) {}

    fn victim(&mut self) -> Option<K> {
        if self.keys.is_empty() {
            return None;
        }
        let i = (self.next_rand() as usize) % self.keys.len();
        let victim = self.keys.swap_remove(i);
        self.index.remove(&victim);
        if let Some(moved) = self.keys.get(i) {
            self.index.insert(moved.clone(), i);
        }
        Some(victim)
    }

    fn on_external_remove(&mut self, key: &K) {
        if let Some(i) = self.index.remove(key) {
            self.keys.swap_remove(i);
            if let Some(moved) = self.keys.get(i) {
                self.index.insert(moved.clone(), i);
            }
        }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Replays a skewed point workload against a cache and reports hit rate.
fn measure(cache: &RangeCache, label: &str) {
    let mut gen = WorkloadGen::new(WorkloadConfig {
        num_keys: 20_000,
        value_size: 64,
        point_skew: 0.99,
        ..Default::default()
    });
    let mix = Mix::new(100.0, 0.0, 0.0, 0.0);
    let (mut hits, mut total) = (0u64, 0u64);
    for _ in 0..60_000 {
        if let Operation::Get { key } = gen.next_op(&mix) {
            total += 1;
            match cache.get_point(&key) {
                PointLookup::Hit(_) | PointLookup::NegativeHit => hits += 1,
                PointLookup::Miss => {
                    // Simulate the DB fill path.
                    cache.insert_point(key, Bytes::from(vec![b'v'; 64]));
                }
            }
        }
    }
    println!("{label:>8}: hit rate {:.4}", hits as f64 / total as f64);
}

fn main() {
    let capacity = 200_000; // bytes -> roughly 1.4k entries
    println!("point workload, Zipf 0.99, cache holds ~7% of keys\n");
    measure(
        &RangeCache::with_policy(capacity, Box::new(|| Box::new(RandomPolicy::new(7)))),
        "random",
    );
    measure(
        &RangeCache::with_policy(capacity, Box::new(|| Box::new(LruPolicy::new()))),
        "lru",
    );
    measure(
        &RangeCache::with_policy(capacity, Box::new(|| Box::new(LeCaRPolicy::new()))),
        "lecar",
    );
}
