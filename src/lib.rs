//! Umbrella crate for the AdCache workspace.
//!
//! This crate re-exports the public APIs of every workspace member so that
//! examples and cross-crate integration tests have a single import root. The
//! actual functionality lives in the member crates:
//!
//! - [`lsm`] — the LSM-tree storage engine substrate,
//! - [`cache`] — cache structures, eviction policies and admission control,
//! - [`rl`] — the actor-critic reinforcement-learning agent,
//! - [`workload`] — workload generators and dynamic phase schedules,
//! - [`core`] — the AdCache controller and the cached database engine.

pub use adcache_cache as cache;
pub use adcache_core as core;
pub use adcache_lsm as lsm;
pub use adcache_rl as rl;
pub use adcache_workload as workload;
